"""Slashing: detection of equivocating checkpoint votes and punishment.

The slashing-based attack of Section 5.2.1 has Byzantine validators attest
on two branches in the same epoch — a double vote (Casper FFG rule I).
Before GST the evidence cannot reach honest proposers across the partition,
so the attackers operate unpunished; once communication is restored, any
honest proposer that has seen both attestations includes the evidence in a
block and the offender is slashed: it loses part of its stake and is
ejected from the validator set.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.backend import SlashingRules, StakeBackend, get_backend
from repro.spec.attestation import Attestation
from repro.spec.state import BeaconState


@dataclass(frozen=True)
class SlashingEvidence:
    """A provable slashable offence: two conflicting attestations."""

    validator_index: int
    first: Attestation
    second: Attestation

    def __post_init__(self) -> None:
        if self.first.validator_index != self.validator_index:
            raise ValueError("evidence attestations must come from the accused validator")
        if self.second.validator_index != self.validator_index:
            raise ValueError("evidence attestations must come from the accused validator")
        if not self.first.is_slashable_with(self.second):
            raise ValueError("the two attestations are not a slashable pair")

    @property
    def is_double_vote(self) -> bool:
        """True when the offence is a double vote (rule I)."""
        return self.first.is_double_vote_with(self.second)

    @property
    def is_surround_vote(self) -> bool:
        """True when the offence is a surround vote (rule II)."""
        return self.first.is_surround_vote_with(self.second)


class SlashingDetector:
    """Observes attestations and produces slashing evidence.

    Each (honest) node runs one detector over the attestations it has seen.
    Attestations on branches a node has not observed (e.g. across a
    partition before GST) never reach its detector — which is exactly why
    the attack of Section 5.2.1 goes unpunished until after GST.
    """

    def __init__(self) -> None:
        # validator index -> list of distinct FFG votes seen, with one
        # representative attestation per vote.
        self._seen: Dict[int, List[Attestation]] = defaultdict(list)
        self._evidence: Dict[int, SlashingEvidence] = {}

    def clone(self) -> "SlashingDetector":
        """An independent detector with the same observations (view splits).

        Attestations and evidence are immutable, so only the containers
        are duplicated.
        """
        copy = SlashingDetector()
        for index, seen in self._seen.items():
            if seen:
                copy._seen[index] = list(seen)
        copy._evidence = dict(self._evidence)
        return copy

    def observe(self, attestation: Attestation) -> Optional[SlashingEvidence]:
        """Record an attestation; return new evidence if it is slashable.

        Only the first piece of evidence per validator is kept (one offence
        is enough to slash).
        """
        index = attestation.validator_index
        if index in self._evidence:
            return None
        for previous in self._seen[index]:
            if previous.ffg == attestation.ffg and previous.head_root == attestation.head_root:
                return None  # exact duplicate
            if previous.is_slashable_with(attestation):
                evidence = SlashingEvidence(
                    validator_index=index, first=previous, second=attestation
                )
                self._evidence[index] = evidence
                return evidence
        self._seen[index].append(attestation)
        return None

    def observe_batch(
        self, attestations: Iterable[Attestation]
    ) -> List[SlashingEvidence]:
        """Observe a whole committee batch; return the new evidence found.

        The per-validator state is independent, so observing a batch is
        the row-wise application of :meth:`observe`; this entry point
        keeps the view-node ingestion loop in one call and skips the
        per-call result juggling.
        """
        evidence: List[SlashingEvidence] = []
        for attestation in attestations:
            found = self.observe(attestation)
            if found is not None:
                evidence.append(found)
        return evidence

    def pending_evidence(self) -> List[SlashingEvidence]:
        """Evidence collected so far (whether or not already included in a block)."""
        return list(self._evidence.values())

    def has_evidence_against(self, validator_index: int) -> bool:
        """True if evidence against ``validator_index`` has been collected."""
        return validator_index in self._evidence


@dataclass
class SlashingOutcome:
    """Result of applying slashings to a state."""

    slashed_indices: List[int] = field(default_factory=list)
    total_penalty: float = 0.0


def apply_slashing(
    state: BeaconState,
    validator_indices: Iterable[int],
    backend: Union[str, StakeBackend] = "numpy",
) -> SlashingOutcome:
    """Slash the given validators: charge the penalty and eject them.

    A slashed validator loses ``min_slashing_penalty_fraction`` of its stake
    immediately (the correlation penalty of the real protocol is not
    modelled — the paper only relies on slashing implying ejection and some
    stake loss) and exits the validator set at the next epoch.

    Validators that already left the active set — slashed earlier, or
    ejected via the 16.75-ETH rule — are skipped: a validator cannot be
    charged a penalty after exiting, mirroring the ejection ordering of the
    shared kernel (:mod:`repro.core.backend`), which freezes ejected stakes.

    The arithmetic runs on the shared flat-array kernel
    (:meth:`~repro.core.backend.StakeBackend.slashing_epoch_update`); this
    function adapts the registry and schedules the exits.
    """
    outcome = SlashingOutcome()
    # De-duplicated target positions, keeping the caller's order for the
    # reported indices (evidence order in detect_and_slash).
    requested: List[int] = []
    seen: Set[int] = set()
    for index in validator_indices:
        if index not in seen:
            seen.add(index)
            requested.append(index)
    if not requested:
        return outcome

    validators = list(state.validators)
    position_of = {validator.index: pos for pos, validator in enumerate(validators)}
    stakes = np.array([v.stake for v in validators], dtype=float)
    slashed = np.array([v.slashed for v in validators], dtype=bool)
    ineligible = np.array(
        [not v.is_active(state.current_epoch) for v in validators], dtype=bool
    )
    slashable = np.zeros(len(validators), dtype=bool)
    for index in requested:
        slashable[position_of[index]] = True

    rules = SlashingRules.from_config(state.config)
    kernel_outcome = get_backend(backend).slashing_epoch_update(
        stakes, slashable, slashed, ineligible, rules
    )
    for validator, stake, is_slashed in zip(
        validators, kernel_outcome.stakes.tolist(), kernel_outcome.slashed.tolist()
    ):
        validator.stake = stake
        validator.slashed = is_slashed
    newly = kernel_outcome.newly_slashed
    for index in requested:
        position = position_of[index]
        if newly[position]:
            validators[position].exit(state.current_epoch + 1)
            outcome.slashed_indices.append(index)
    outcome.total_penalty = kernel_outcome.total_penalty
    return outcome


def detect_and_slash(
    state: BeaconState,
    attestations: Sequence[Attestation],
    detector: Optional[SlashingDetector] = None,
) -> Tuple[SlashingOutcome, List[SlashingEvidence]]:
    """Convenience wrapper: run detection over ``attestations`` then slash.

    Returns the slashing outcome and the list of evidence found.  Used by
    branch-level experiments that replay all attestations seen after GST.
    """
    det = detector or SlashingDetector()
    evidence: List[SlashingEvidence] = []
    for attestation in attestations:
        found = det.observe(attestation)
        if found is not None:
            evidence.append(found)
    outcome = apply_slashing(state, [e.validator_index for e in evidence])
    return outcome, evidence
