"""The block tree: every block a validator has perceived.

Validators keep a local tree-like data structure containing all perceived
blocks (Section 2 of the paper).  The fork-choice rule
(:mod:`repro.spec.forkchoice`) selects the candidate chain out of this
tree; the finality gadget (:mod:`repro.spec.finality`) marks a prefix of it
as finalized.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Set

from repro.spec.block import BeaconBlock
from repro.spec.types import Root, GENESIS_ROOT


class UnknownBlockError(KeyError):
    """Raised when a block root is not present in the tree."""


class BlockTree:
    """A rooted tree of beacon blocks keyed by block root."""

    def __init__(self, genesis: Optional[BeaconBlock] = None) -> None:
        genesis_block = genesis or BeaconBlock.genesis()
        if not genesis_block.is_genesis():
            raise ValueError("BlockTree must be rooted at a genesis block")
        self._blocks: Dict[Root, BeaconBlock] = {genesis_block.root: genesis_block}
        self._children: Dict[Root, List[Root]] = defaultdict(list)
        self._genesis_root = genesis_block.root

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def genesis_root(self) -> Root:
        """Root of the genesis block."""
        return self._genesis_root

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, root: Root) -> bool:
        return root in self._blocks

    def get(self, root: Root) -> BeaconBlock:
        """Return the block with the given root, raising if unknown."""
        try:
            return self._blocks[root]
        except KeyError as exc:
            raise UnknownBlockError(f"unknown block root {root}") from exc

    def blocks(self) -> Iterator[BeaconBlock]:
        """Iterate over every block in the tree (no particular order)."""
        return iter(self._blocks.values())

    def children_of(self, root: Root) -> List[Root]:
        """Return the roots of the direct children of ``root``."""
        if root not in self._blocks:
            raise UnknownBlockError(f"unknown block root {root}")
        return list(self._children.get(root, []))

    def leaves(self) -> List[Root]:
        """Return the roots of all leaf blocks (blocks without children)."""
        return [root for root in self._blocks if not self._children.get(root)]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_block(self, block: BeaconBlock) -> bool:
        """Insert ``block`` into the tree.

        Returns ``True`` if the block was new, ``False`` if it was already
        present.  The parent must already be known; this mirrors the real
        client behaviour of holding blocks until their ancestry is complete
        (the network layer takes care of ordering in the simulator).
        """
        if block.root in self._blocks:
            return False
        if block.parent_root not in self._blocks:
            raise UnknownBlockError(
                f"parent {block.parent_root} of block {block.root} is unknown"
            )
        parent = self._blocks[block.parent_root]
        if block.slot <= parent.slot and not block.is_genesis():
            raise ValueError(
                f"block slot {block.slot} must exceed parent slot {parent.slot}"
            )
        self._blocks[block.root] = block
        self._children[block.parent_root].append(block.root)
        return True

    def clone(self) -> "BlockTree":
        """An independent tree holding the same blocks.

        Blocks are immutable, so the copy is structural only (dict and
        child-list duplication); used when a view group splits.
        """
        copy = BlockTree.__new__(BlockTree)
        copy._blocks = dict(self._blocks)
        copy._children = defaultdict(list)
        for root, children in self._children.items():
            if children:
                copy._children[root] = list(children)
        copy._genesis_root = self._genesis_root
        return copy

    # ------------------------------------------------------------------
    # Ancestry queries
    # ------------------------------------------------------------------
    def chain_to_genesis(self, root: Root) -> List[BeaconBlock]:
        """Return the chain from genesis to ``root`` (inclusive, in order)."""
        chain: List[BeaconBlock] = []
        current = self.get(root)
        while True:
            chain.append(current)
            if current.is_genesis():
                break
            current = self.get(current.parent_root)
        chain.reverse()
        return chain

    def is_ancestor(self, ancestor: Root, descendant: Root) -> bool:
        """Return True if ``ancestor`` lies on the chain from genesis to ``descendant``."""
        if ancestor not in self._blocks:
            raise UnknownBlockError(f"unknown block root {ancestor}")
        current = self.get(descendant)
        while True:
            if current.root == ancestor:
                return True
            if current.is_genesis():
                return False
            current = self.get(current.parent_root)

    def ancestor_at_slot(self, root: Root, slot: int) -> Root:
        """Return the ancestor of ``root`` with the highest slot <= ``slot``.

        This is the helper fork choice and FFG use to map a head block to
        the checkpoint block of an epoch boundary.
        """
        current = self.get(root)
        while current.slot > slot and not current.is_genesis():
            current = self.get(current.parent_root)
        return current.root

    def descendants(self, root: Root) -> Set[Root]:
        """Return the set of all descendants of ``root`` (excluding itself)."""
        result: Set[Root] = set()
        stack = list(self._children.get(root, []))
        while stack:
            node = stack.pop()
            if node in result:
                continue
            result.add(node)
            stack.extend(self._children.get(node, []))
        return result

    def common_ancestor(self, root_a: Root, root_b: Root) -> Root:
        """Return the deepest common ancestor of two blocks."""
        ancestors_a = {block.root for block in self.chain_to_genesis(root_a)}
        current = self.get(root_b)
        while True:
            if current.root in ancestors_a:
                return current.root
            if current.is_genesis():
                return self._genesis_root
            current = self.get(current.parent_root)

    def highest_slot(self) -> int:
        """Return the highest slot of any block in the tree."""
        return max(block.slot for block in self._blocks.values())
