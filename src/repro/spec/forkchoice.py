"""LMD-GHOST fork choice.

The fork-choice rule selects the *candidate chain* (Definition 1 of the
paper) from the local block tree: starting at the justified checkpoint's
block, repeatedly descend into the child subtree with the greatest weight
of latest attestations (Latest Message Driven — Greediest Heaviest
Observed SubTree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.spec.attestation import Attestation
from repro.spec.block import BeaconBlock
from repro.spec.blocktree import BlockTree
from repro.spec.checkpoint import Checkpoint, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.state import BeaconState
from repro.spec.types import Root


@dataclass
class LatestMessage:
    """The latest (highest-epoch) block vote seen from a validator."""

    epoch: int
    root: Root


@dataclass
class Store:
    """Fork-choice store: block tree plus per-validator latest messages.

    One ``Store`` exists per simulated node.  It is deliberately close to
    the consensus-spec ``Store`` object: ``justified_checkpoint`` anchors
    the GHOST walk and ``latest_messages`` carries the block votes.
    """

    config: SpecConfig
    tree: BlockTree = field(default_factory=BlockTree)
    justified_checkpoint: Checkpoint = GENESIS_CHECKPOINT
    finalized_checkpoint: Checkpoint = GENESIS_CHECKPOINT
    latest_messages: Dict[int, LatestMessage] = field(default_factory=dict)
    #: Map from checkpoint epoch to the block root of the checkpoint, as
    #: perceived locally (filled in by the node when epochs begin).
    checkpoint_roots: Dict[int, Root] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def on_block(self, block: BeaconBlock) -> bool:
        """Insert a block into the tree.  Returns True if it was new."""
        return self.tree.add_block(block)

    def on_attestation(self, attestation: Attestation) -> None:
        """Update the latest message of the attesting validator.

        Only the newest vote (by target epoch, then slot) from each
        validator counts in LMD-GHOST.
        """
        if attestation.head_root not in self.tree:
            # The voted-for block has not been delivered yet; the simulator's
            # network layer re-delivers attestations after their block, so
            # dropping here is safe and mirrors real client queuing.
            return
        current = self.latest_messages.get(attestation.validator_index)
        if current is None or attestation.target_epoch >= current.epoch:
            self.latest_messages[attestation.validator_index] = LatestMessage(
                epoch=attestation.target_epoch, root=attestation.head_root
            )

    def update_checkpoints(
        self, justified: Checkpoint, finalized: Checkpoint
    ) -> None:
        """Adopt newer justified/finalized checkpoints."""
        if justified.epoch > self.justified_checkpoint.epoch:
            self.justified_checkpoint = justified
        if finalized.epoch > self.finalized_checkpoint.epoch:
            self.finalized_checkpoint = finalized

    # ------------------------------------------------------------------
    # Weights and head computation
    # ------------------------------------------------------------------
    def _vote_weights(
        self, state: BeaconState, stake_override: Optional[Dict[int, float]] = None
    ) -> Dict[Root, float]:
        """Stake-weighted latest-message counts per block root.

        ``stake_override`` supplies the balances to weight votes with — the
        real protocol uses the balances of the *justified* state, not the
        head state, so that two views that only disagree past the justified
        checkpoint still weigh votes identically and converge.
        """
        weights: Dict[Root, float] = {}
        for validator_index, message in self.latest_messages.items():
            if validator_index >= len(state.validators):
                continue
            validator = state.validators[validator_index]
            if not validator.is_active(state.current_epoch) or validator.slashed:
                continue
            if message.root not in self.tree:
                continue
            stake = (
                stake_override.get(validator_index, validator.stake)
                if stake_override is not None
                else validator.stake
            )
            weights[message.root] = weights.get(message.root, 0.0) + stake
        return weights

    def subtree_weight(self, root: Root, weights: Dict[Root, float]) -> float:
        """Total vote weight of the subtree rooted at ``root``."""
        total = weights.get(root, 0.0)
        for child in self.tree.children_of(root):
            total += self.subtree_weight(child, weights)
        return total

    def get_head(
        self, state: BeaconState, stake_override: Optional[Dict[int, float]] = None
    ) -> Root:
        """Run LMD-GHOST from the justified checkpoint and return the head root."""
        start = self.justified_checkpoint.root
        if start not in self.tree:
            start = self.tree.genesis_root
        weights = self._vote_weights(state, stake_override)
        head = start
        while True:
            children = self.tree.children_of(head)
            if not children:
                return head
            # Choose the heaviest child; break ties by root for determinism.
            head = max(
                children,
                key=lambda child: (self.subtree_weight(child, weights), child.hex),
            )

    def candidate_chain(self, state: BeaconState) -> List[BeaconBlock]:
        """The candidate chain (Definition 1): genesis → head."""
        return self.tree.chain_to_genesis(self.get_head(state))

    # ------------------------------------------------------------------
    # Checkpoint helpers
    # ------------------------------------------------------------------
    def checkpoint_for_epoch(self, epoch: int, head: Root) -> Checkpoint:
        """The checkpoint of ``epoch`` on the chain ending at ``head``.

        The checkpoint block is the block at (or the latest before) the
        first slot of the epoch, on the chain of ``head``.
        """
        boundary_slot = self.config.start_slot_of_epoch(epoch)
        root = self.tree.ancestor_at_slot(head, boundary_slot)
        return Checkpoint(epoch=epoch, root=root)

    def head_block(self, state: BeaconState) -> BeaconBlock:
        """Return the head block object."""
        return self.tree.get(self.get_head(state))


def fork_exists(store: Store) -> bool:
    """True when the block tree currently holds more than one leaf."""
    return len(store.tree.leaves()) > 1


def branch_heads(store: Store) -> Sequence[Root]:
    """Return the leaf roots, i.e. the competing branch heads."""
    return store.tree.leaves()
