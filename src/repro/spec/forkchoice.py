"""LMD-GHOST fork choice.

The fork-choice rule selects the *candidate chain* (Definition 1 of the
paper) from the local block tree: starting at the justified checkpoint's
block, repeatedly descend into the child subtree with the greatest weight
of latest attestations (Latest Message Driven — Greediest Heaviest
Observed SubTree).

The store is array-native: latest messages live in flat per-validator
``int64`` arrays (epoch, interned head-root id) updated either one vote at
a time (:meth:`Store.on_attestation`) or a whole committee batch per call
(:meth:`Store.on_attestation_batch`), and vote weights are tallied with
one ``bincount`` over those arrays instead of a per-message Python walk.
Subtree weights are accumulated bottom-up in a single pass over the tree,
so a head computation is O(votes + tree) instead of O(tree²).  The
``latest_messages`` mapping of the consensus-spec ``Store`` survives as a
reconstructing property for inspection and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.attestation_batch import RootInterner
from repro.spec.attestation import Attestation
from repro.spec.block import BeaconBlock
from repro.spec.blocktree import BlockTree
from repro.spec.checkpoint import Checkpoint, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.state import BeaconState
from repro.spec.types import Root

_INITIAL_VOTE_CAPACITY = 64


@dataclass
class LatestMessage:
    """The latest (highest-epoch) block vote seen from a validator."""

    epoch: int
    root: Root


@dataclass
class Store:
    """Fork-choice store: block tree plus per-validator latest messages.

    One ``Store`` exists per simulated view.  It is deliberately close to
    the consensus-spec ``Store`` object: ``justified_checkpoint`` anchors
    the GHOST walk and the latest-message arrays carry the block votes.
    ``version`` is bumped on every mutation that can move the head, so
    callers can cache head computations safely.
    """

    config: SpecConfig
    tree: BlockTree = field(default_factory=BlockTree)
    justified_checkpoint: Checkpoint = GENESIS_CHECKPOINT
    finalized_checkpoint: Checkpoint = GENESIS_CHECKPOINT
    #: Map from checkpoint epoch to the block root of the checkpoint, as
    #: perceived locally (filled in by the node when epochs begin).
    checkpoint_roots: Dict[int, Root] = field(default_factory=dict)
    #: Mutation counter: bumped whenever tree/votes/justification change.
    version: int = 0

    def __post_init__(self) -> None:
        self._latest_epoch = np.full(_INITIAL_VOTE_CAPACITY, -1, dtype=np.int64)
        self._latest_root = np.zeros(_INITIAL_VOTE_CAPACITY, dtype=np.int64)
        # NOTE: this id space is the store's own — never compare its ids
        # with the FFG vote pool's (each structure interns independently).
        self._interner = RootInterner()

    # ------------------------------------------------------------------
    # Latest-message array plumbing
    # ------------------------------------------------------------------
    def root_id_of(self, root: Root) -> Optional[int]:
        """Dense id of ``root`` if any vote ever carried it, else ``None``."""
        return self._interner.lookup(root)

    def _ensure_vote_capacity(self, max_index: int) -> None:
        capacity = self._latest_epoch.shape[0]
        if max_index < capacity:
            return
        while capacity <= max_index:
            capacity *= 2
        epochs = np.full(capacity, -1, dtype=np.int64)
        roots = np.zeros(capacity, dtype=np.int64)
        old = self._latest_epoch.shape[0]
        epochs[:old] = self._latest_epoch
        roots[:old] = self._latest_root
        self._latest_epoch = epochs
        self._latest_root = roots

    def latest_vote_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(epochs, root_ids)`` array views of the latest messages.

        Indexed by validator index; epoch ``-1`` means "never voted".
        Treat as read-only; translate ids with :meth:`root_id_of` /
        ``latest_root_of``.
        """
        return self._latest_epoch, self._latest_root

    @property
    def latest_messages(self) -> Dict[int, LatestMessage]:
        """Latest block vote per validator, reconstructed from the arrays."""
        indices = np.nonzero(self._latest_epoch >= 0)[0]
        return {
            int(index): LatestMessage(
                epoch=int(self._latest_epoch[index]),
                root=self._interner.root_of(int(self._latest_root[index])),
            )
            for index in indices
        }

    def clone(self) -> "Store":
        """An independent store with identical tree, votes and checkpoints.

        The latest-message arrays, the interner (ids stay comparable only
        within one store) and the checkpoint maps are all duplicated, so
        mutations on either side never leak across — the copy-on-write
        primitive behind dynamic view splitting.
        """
        copy = Store(
            config=self.config,
            tree=self.tree.clone(),
            justified_checkpoint=self.justified_checkpoint,
            finalized_checkpoint=self.finalized_checkpoint,
            checkpoint_roots=dict(self.checkpoint_roots),
            version=self.version,
        )
        copy._latest_epoch = self._latest_epoch.copy()
        copy._latest_root = self._latest_root.copy()
        copy._interner = self._interner.clone()
        return copy

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def on_block(self, block: BeaconBlock) -> bool:
        """Insert a block into the tree.  Returns True if it was new."""
        added = self.tree.add_block(block)
        if added:
            self.version += 1
        return added

    def on_attestation(self, attestation: Attestation) -> None:
        """Update the latest message of the attesting validator.

        Only the newest vote (by target epoch, then arrival) from each
        validator counts in LMD-GHOST.
        """
        if attestation.head_root not in self.tree:
            # The voted-for block has not been delivered yet; the simulator's
            # network layer re-delivers attestations after their block, so
            # dropping here is safe and mirrors real client queuing.
            return
        validator = attestation.validator_index
        self._ensure_vote_capacity(validator)
        if attestation.target_epoch >= self._latest_epoch[validator]:
            self._latest_epoch[validator] = attestation.target_epoch
            self._latest_root[validator] = self._interner.intern(attestation.head_root)
            self.version += 1

    def on_attestation_batch(
        self, validators: np.ndarray, target_epoch: int, head_root: Root
    ) -> None:
        """Record a committee batch's identical block votes in one update.

        The caller guarantees ``head_root`` is in the tree (the node pends
        whole batches whose head is unknown, exactly like single votes).
        """
        validators = np.asarray(validators, dtype=np.int64)
        if validators.size == 0:
            return
        self._ensure_vote_capacity(int(validators.max()))
        newer = target_epoch >= self._latest_epoch[validators]
        updated = validators[newer]
        if updated.size == 0:
            return
        root_id = self._interner.intern(head_root)
        self._latest_epoch[updated] = target_epoch
        self._latest_root[updated] = root_id
        self.version += 1

    def update_checkpoints(
        self, justified: Checkpoint, finalized: Checkpoint
    ) -> None:
        """Adopt newer justified/finalized checkpoints."""
        if justified.epoch > self.justified_checkpoint.epoch:
            self.justified_checkpoint = justified
            self.version += 1
        if finalized.epoch > self.finalized_checkpoint.epoch:
            self.finalized_checkpoint = finalized

    # ------------------------------------------------------------------
    # Weights and head computation
    # ------------------------------------------------------------------
    def _eligible_stakes(
        self, state: BeaconState, stake_override: Optional[Dict[int, float]] = None
    ) -> np.ndarray:
        """Per-validator fork-choice weight from a registry state.

        ``stake_override`` supplies the balances to weight votes with — the
        real protocol uses the balances of the *justified* state, not the
        head state, so that two views that only disagree past the justified
        checkpoint still weigh votes identically and converge.  Inactive
        and slashed validators weigh zero.
        """
        epoch = state.current_epoch
        eligible = np.zeros(len(state.validators), dtype=float)
        for position, validator in enumerate(state.validators):
            if not validator.is_active(epoch) or validator.slashed:
                continue
            if stake_override is not None:
                eligible[position] = stake_override.get(
                    validator.index, validator.stake
                )
            else:
                eligible[position] = validator.stake
        return eligible

    def _vote_weights_from_stakes(
        self, eligible_stakes: np.ndarray
    ) -> Dict[Root, float]:
        """Stake-weighted latest-message tallies per block root (bincount)."""
        limit = min(self._latest_epoch.shape[0], eligible_stakes.shape[0])
        if limit == 0:
            return {}
        valid = self._latest_epoch[:limit] >= 0
        if not valid.any():
            return {}
        roots = self._latest_root[:limit][valid]
        totals = np.bincount(
            roots,
            weights=np.asarray(eligible_stakes, dtype=float)[:limit][valid],
            minlength=len(self._interner),
        )
        return {
            self._interner.root_of(int(root_id)): float(totals[int(root_id)])
            for root_id in np.unique(roots)
        }

    def _vote_weights(
        self, state: BeaconState, stake_override: Optional[Dict[int, float]] = None
    ) -> Dict[Root, float]:
        """Stake-weighted latest-message counts per block root."""
        return self._vote_weights_from_stakes(
            self._eligible_stakes(state, stake_override)
        )

    def subtree_weight(self, root: Root, weights: Dict[Root, float]) -> float:
        """Total vote weight of the subtree rooted at ``root``."""
        total = weights.get(root, 0.0)
        for child in self.tree.children_of(root):
            total += self.subtree_weight(child, weights)
        return total

    def _ghost_walk(self, weights: Dict[Root, float]) -> Root:
        """Descend from the justified root into the heaviest subtree.

        Subtree weights are accumulated in one bottom-up pass (children
        first, by descending slot) instead of re-walking the subtree per
        child, keeping the whole head computation O(votes + tree).
        """
        start = self.justified_checkpoint.root
        if start not in self.tree:
            start = self.tree.genesis_root
        subtree: Dict[Root, float] = {}
        for block in sorted(self.tree.blocks(), key=lambda b: b.slot, reverse=True):
            total = weights.get(block.root, 0.0)
            for child in self.tree.children_of(block.root):
                total += subtree[child]
            subtree[block.root] = total
        head = start
        while True:
            children = self.tree.children_of(head)
            if not children:
                return head
            # Choose the heaviest child; break ties by root for determinism.
            head = max(children, key=lambda child: (subtree[child], child.hex))

    def get_head(
        self, state: BeaconState, stake_override: Optional[Dict[int, float]] = None
    ) -> Root:
        """Run LMD-GHOST from the justified checkpoint and return the head root."""
        return self._ghost_walk(self._vote_weights(state, stake_override))

    def get_head_weighted(self, eligible_stakes: np.ndarray) -> Root:
        """LMD-GHOST head from precomputed per-validator weights.

        The hot path for view nodes: the caller maintains the eligible
        stake array (justified balances, zeroed for inactive/slashed
        validators) and refreshes it once per epoch instead of rebuilding
        it from the registry on every head query.
        """
        return self._ghost_walk(self._vote_weights_from_stakes(eligible_stakes))

    def candidate_chain(self, state: BeaconState) -> List[BeaconBlock]:
        """The candidate chain (Definition 1): genesis → head."""
        return self.tree.chain_to_genesis(self.get_head(state))

    # ------------------------------------------------------------------
    # Checkpoint helpers
    # ------------------------------------------------------------------
    def checkpoint_for_epoch(self, epoch: int, head: Root) -> Checkpoint:
        """The checkpoint of ``epoch`` on the chain ending at ``head``.

        The checkpoint block is the block at (or the latest before) the
        first slot of the epoch, on the chain of ``head``.
        """
        boundary_slot = self.config.start_slot_of_epoch(epoch)
        root = self.tree.ancestor_at_slot(head, boundary_slot)
        return Checkpoint(epoch=epoch, root=root)

    def head_block(self, state: BeaconState) -> BeaconBlock:
        """Return the head block object."""
        return self.tree.get(self.get_head(state))


def fork_exists(store: Store) -> bool:
    """True when the block tree currently holds more than one leaf."""
    return len(store.tree.leaves()) > 1


def branch_heads(store: Store) -> Sequence[Root]:
    """Return the leaf roots, i.e. the competing branch heads."""
    return store.tree.leaves()
