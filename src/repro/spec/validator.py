"""Validator registry entries.

Each validator owns a stake (initially 32 ETH), an inactivity score, and a
handful of lifecycle flags (slashed, exited).  The registry-wide helpers at
the bottom compute stake-weighted proportions, which is the notion of
"proportion" used throughout the paper (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.spec.config import SpecConfig


@dataclass
class Validator:
    """A single validator registry entry."""

    index: int
    stake: float
    #: Inactivity score, always non-negative (Equation 1).
    inactivity_score: int = 0
    #: Whether the validator has been slashed.
    slashed: bool = False
    #: Epoch at which the validator exited (ejected or slashed); ``None``
    #: while the validator is still part of the active set.
    exit_epoch: Optional[int] = None
    #: Free-form tag used by experiments to group validators (e.g. "honest",
    #: "byzantine").  The protocol itself never reads it.
    label: str = "honest"

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"validator index must be non-negative, got {self.index}")
        if self.stake < 0:
            raise ValueError(f"validator stake must be non-negative, got {self.stake}")
        if self.inactivity_score < 0:
            raise ValueError("inactivity score must be non-negative")

    # ------------------------------------------------------------------
    def is_active(self, epoch: int) -> bool:
        """Return True if the validator is part of the active set at ``epoch``."""
        return self.exit_epoch is None or epoch < self.exit_epoch

    def exit(self, epoch: int) -> None:
        """Mark the validator as exited starting at ``epoch`` (idempotent)."""
        if self.exit_epoch is None or epoch < self.exit_epoch:
            self.exit_epoch = epoch

    def apply_penalty(self, amount: float) -> float:
        """Subtract ``amount`` from the stake (floored at zero).

        Returns the amount actually deducted.
        """
        if amount < 0:
            raise ValueError("penalty amount must be non-negative")
        deducted = min(self.stake, amount)
        self.stake -= deducted
        return deducted

    def apply_reward(self, amount: float, cap: Optional[float] = None) -> float:
        """Add ``amount`` to the stake, optionally capping at ``cap``.

        Returns the amount actually credited.
        """
        if amount < 0:
            raise ValueError("reward amount must be non-negative")
        new_stake = self.stake + amount
        if cap is not None:
            new_stake = min(new_stake, cap)
        credited = new_stake - self.stake
        self.stake = new_stake
        return credited


def make_registry(
    n_validators: int,
    config: Optional[SpecConfig] = None,
    byzantine_fraction: float = 0.0,
) -> List[Validator]:
    """Create a fresh validator registry.

    Parameters
    ----------
    n_validators:
        Total number of validators.
    config:
        Protocol configuration (defaults to mainnet); sets the initial stake.
    byzantine_fraction:
        Fraction of the registry to label ``"byzantine"``.  The Byzantine
        validators are placed at the end of the registry, which matches the
        paper's convention of a proportion ``beta_0`` of Byzantine stake.
    """
    cfg = config or SpecConfig.mainnet()
    if n_validators <= 0:
        raise ValueError("n_validators must be positive")
    if not 0.0 <= byzantine_fraction < 1.0:
        raise ValueError("byzantine_fraction must lie in [0, 1)")
    n_byzantine = int(round(n_validators * byzantine_fraction))
    registry = []
    for index in range(n_validators):
        label = "byzantine" if index >= n_validators - n_byzantine else "honest"
        registry.append(
            Validator(index=index, stake=cfg.max_effective_balance, label=label)
        )
    return registry


def total_stake(validators: Iterable[Validator], epoch: Optional[int] = None) -> float:
    """Total stake of the given validators.

    If ``epoch`` is provided, only validators active at that epoch count.
    """
    if epoch is None:
        return sum(v.stake for v in validators)
    return sum(v.stake for v in validators if v.is_active(epoch))


def stake_proportion(
    subset: Sequence[Validator],
    registry: Sequence[Validator],
    epoch: Optional[int] = None,
) -> float:
    """Stake-weighted proportion of ``subset`` within ``registry``.

    This is the paper's notion of "proportion" (Section 2): the ratio of the
    subset's combined stake to the total staked value.  Returns 0 when the
    registry holds no stake.
    """
    denominator = total_stake(registry, epoch)
    if denominator == 0:
        return 0.0
    return total_stake(subset, epoch) / denominator


def byzantine_proportion(registry: Sequence[Validator], epoch: Optional[int] = None) -> float:
    """Stake proportion of validators labelled ``"byzantine"``."""
    byzantine = [v for v in registry if v.label == "byzantine"]
    return stake_proportion(byzantine, registry, epoch)
