"""Primitive types shared across the protocol substrate.

The Ethereum consensus specification works with dedicated integer types
(``Slot``, ``Epoch``, ``Gwei``, ``ValidatorIndex``) and 32-byte roots.  We
keep the same vocabulary with lightweight Python aliases plus a tiny
``Root`` helper so that block identifiers remain readable in logs and test
failures while still being hashable and comparable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import NewType

Slot = NewType("Slot", int)
Epoch = NewType("Epoch", int)
ValidatorIndex = NewType("ValidatorIndex", int)

#: Stake amounts are tracked in ETH (floating point), matching the paper's
#: continuous treatment of balances rather than the spec's integer Gwei.
Eth = float


@dataclass(frozen=True, order=True)
class Root:
    """A content identifier for a block or checkpoint.

    Real Ethereum uses 32-byte SSZ hash tree roots.  For the simulator we
    derive a short hex digest from a human-readable label, which keeps
    equality/hashing semantics while making traces debuggable.
    """

    hex: str

    @staticmethod
    def from_label(label: str) -> "Root":
        """Create a root by hashing an arbitrary label."""
        digest = hashlib.sha256(label.encode("utf-8")).hexdigest()[:16]
        return Root(hex=digest)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.hex


#: The root of the genesis block, fixed so every simulation agrees on it.
GENESIS_ROOT = Root.from_label("genesis")


def compute_epoch_at_slot(slot: int, slots_per_epoch: int) -> int:
    """Return the epoch containing ``slot``."""
    if slot < 0:
        raise ValueError(f"slot must be non-negative, got {slot}")
    return slot // slots_per_epoch


def compute_start_slot_at_epoch(epoch: int, slots_per_epoch: int) -> int:
    """Return the first slot of ``epoch``."""
    if epoch < 0:
        raise ValueError(f"epoch must be non-negative, got {epoch}")
    return epoch * slots_per_epoch


def is_epoch_boundary_slot(slot: int, slots_per_epoch: int) -> bool:
    """Return ``True`` when ``slot`` is the first slot of its epoch."""
    return slot % slots_per_epoch == 0
