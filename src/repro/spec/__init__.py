"""Gasper-style Ethereum PoS protocol substrate.

This package implements, from scratch, every protocol mechanism the paper's
analysis depends on: the beacon-chain data model, committees, LMD-GHOST
fork choice, Casper FFG justification/finalization, attestation rewards,
slashing, and the inactivity leak.
"""

from repro.spec.attestation import Attestation
from repro.spec.block import BeaconBlock
from repro.spec.blocktree import BlockTree, UnknownBlockError
from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.committees import DutyScheduler, EpochDuties
from repro.spec.config import DEFAULT_CONFIG, SpecConfig
from repro.spec.finality import (
    FFGVotePool,
    JustificationResult,
    conflicting_finalized_checkpoints,
    process_justification,
    safety_violated,
)
from repro.spec.forkchoice import LatestMessage, Store, branch_heads, fork_exists
from repro.spec.properties import (
    PropertyReport,
    PropertyVerdict,
    check_availability,
    check_byzantine_threshold,
    check_liveness,
    check_safety,
    check_simulation_properties,
)
from repro.spec.inactivity import (
    InactivityUpdate,
    discrete_ejection_epoch,
    discrete_stake_trajectory,
    process_inactivity_epoch,
)
from repro.spec.rewards import RewardSummary, process_attestation_rewards
from repro.spec.slashing import (
    SlashingDetector,
    SlashingEvidence,
    SlashingOutcome,
    apply_slashing,
    detect_and_slash,
)
from repro.spec.state import BeaconState
from repro.spec.state_transition import (
    ChainHistory,
    EpochReport,
    advance_epoch,
    process_epoch,
)
from repro.spec.types import GENESIS_ROOT, Root
from repro.spec.validator import (
    Validator,
    byzantine_proportion,
    make_registry,
    stake_proportion,
    total_stake,
)

__all__ = [
    "Attestation",
    "BeaconBlock",
    "BeaconState",
    "BlockTree",
    "ChainHistory",
    "Checkpoint",
    "DEFAULT_CONFIG",
    "DutyScheduler",
    "EpochDuties",
    "EpochReport",
    "FFGVote",
    "FFGVotePool",
    "GENESIS_CHECKPOINT",
    "GENESIS_ROOT",
    "InactivityUpdate",
    "JustificationResult",
    "LatestMessage",
    "PropertyReport",
    "PropertyVerdict",
    "RewardSummary",
    "Root",
    "SlashingDetector",
    "SlashingEvidence",
    "SlashingOutcome",
    "SpecConfig",
    "Store",
    "UnknownBlockError",
    "Validator",
    "advance_epoch",
    "apply_slashing",
    "branch_heads",
    "byzantine_proportion",
    "check_availability",
    "check_byzantine_threshold",
    "check_liveness",
    "check_safety",
    "check_simulation_properties",
    "conflicting_finalized_checkpoints",
    "detect_and_slash",
    "discrete_ejection_epoch",
    "discrete_stake_trajectory",
    "fork_exists",
    "make_registry",
    "process_epoch",
    "process_inactivity_epoch",
    "process_justification",
    "process_attestation_rewards",
    "safety_violated",
    "stake_proportion",
    "total_stake",
]
