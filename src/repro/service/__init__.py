"""The long-lived experiment service (ROADMAP item 4).

Everything before this package was a one-shot CLI run: compute, print,
exit.  The service layers crash-tolerant, resumable execution on top of
the trial-parallel sweep engine (:mod:`repro.sim.sweeps`) and the
content-addressed result cache (:mod:`repro.cache`):

* :mod:`repro.service.jobs` — the persistent on-disk job store: one JSON
  record per job (spec, options, state ``queued → running →
  done/failed``, per-trial progress counters), written with the cache's
  atomic-replace discipline so a reader never observes a torn record.
* :mod:`repro.service.executor` — the worker loop: claims queued jobs,
  executes sweep jobs with per-trial result granularity in the
  :class:`~repro.cache.ResultCache` (a job killed mid-run — SIGKILL
  included — resumes from exactly the trials already stored), retries
  failures within a per-job attempt budget, enforces per-job timeouts,
  and requeues in-flight work on graceful shutdown.
* :mod:`repro.service.cli` — the ``repro-service`` command:
  ``submit`` / ``status`` / ``watch`` / ``run-workers`` / ``results``,
  with streaming progress (``watch`` tails the job record as trials
  complete).
"""

from repro.service.executor import execute_job, run_worker_loop
from repro.service.jobs import JOB_STATES, JobRecord, JobStore

__all__ = [
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "execute_job",
    "run_worker_loop",
]
