"""``repro-service`` — the experiment-service command line.

Usage::

    repro-service submit --builder balancing --scenario-arg n_validators=64 \\
        --trials 32 --epochs 2 --seed prod --chunk-size 1
    repro-service submit --experiment fig6 --option n_points=5
    repro-service status
    repro-service watch <job-id>
    repro-service run-workers --jobs 4
    repro-service results <job-id> --json

All state lives under ``--service-dir`` (default ``.repro-service``):
the job queue in ``jobs/``, claim locks in ``locks/``, and the
content-addressed result cache in ``cache/`` (override with
``--cache-dir`` to share a cache with ``repro-experiments``).

``submit`` prints exactly the new job id, so scripts can capture it.
``watch`` tails the job record and prints a line whenever progress
changes.  ``run-workers`` processes the queue (``--idle-exit`` returns
once it drains — the scripted/CI mode) and handles SIGINT/SIGTERM by
requeueing the in-flight job; killing it with SIGKILL instead is also
safe — the next ``run-workers`` recovers the job and resumes from the
trials already cached.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import signal
import sys
import threading
import time
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.cache import ResultCache
from repro.service.executor import DEFAULT_POLL_INTERVAL, run_worker_loop
from repro.service.jobs import DEFAULT_MAX_ATTEMPTS, JobRecord, JobStore
from repro.sim.sweeps import SWEEP_CHUNK_SIZE, ScenarioSpec, SweepResult

DEFAULT_SERVICE_DIR = pathlib.Path(".repro-service")


def _open_service(args: argparse.Namespace) -> Tuple[JobStore, ResultCache]:
    store = JobStore(args.service_dir)
    cache_dir = args.cache_dir if args.cache_dir is not None else args.service_dir / "cache"
    return store, ResultCache(cache_dir)


def _parse_kv(pairs: Sequence[str], option: str) -> Dict[str, Any]:
    """Parse repeated ``key=value`` flags; values are JSON when they parse."""
    parsed: Dict[str, Any] = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise SystemExit(f"{option} expects key=value, got {pair!r}")
        try:
            parsed[key] = json.loads(value)
        except ValueError:
            parsed[key] = value
    return parsed


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_submit(args: argparse.Namespace) -> int:
    store, _cache = _open_service(args)
    if args.experiment is not None:
        from repro.experiments import registry

        experiment = registry.get(args.experiment)  # raises on unknown ids
        options = _parse_kv(args.option, "--option")
        unknown = set(options) - set(experiment.accepted_options()) - {"jobs"}
        if unknown:
            raise SystemExit(
                f"experiment {args.experiment!r} does not accept "
                f"{sorted(unknown)}; accepted: "
                f"{sorted(experiment.accepted_options())}"
            )
        spec = {"experiment": args.experiment, "options": options}
        record = store.submit(
            "experiment",
            spec,
            max_attempts=args.max_attempts,
            timeout=args.timeout,
        )
    else:
        kwargs = _parse_kv(args.scenario_arg, "--scenario-arg")
        if args.preset is not None:
            scenario = ScenarioSpec.from_preset(
                args.preset, epochs=args.epochs, seed=args.seed, **kwargs
            )
        else:
            scenario = ScenarioSpec(
                builder=args.builder,
                kwargs=kwargs,
                epochs=args.epochs,
                seed=args.seed,
                label=args.label,
            )
        spec = {
            "specs": [scenario.canonical()],
            "n_trials": args.trials,
            "chunk_size": args.chunk_size,
        }
        record = store.submit(
            "sweep", spec, max_attempts=args.max_attempts, timeout=args.timeout
        )
    print(record.job_id)
    return 0


def _progress_line(record: JobRecord) -> str:
    progress = record.progress or {}
    line = (
        f"{record.job_id} [{record.kind}] {record.state} "
        f"{progress.get('done', 0)}/{progress.get('total', 0)} trials "
        f"({progress.get('cached', 0)} cached) "
        f"attempt {record.attempts}/{record.max_attempts}"
    )
    if record.error:
        line += f" error: {record.error}"
    return line


def _cmd_status(args: argparse.Namespace) -> int:
    store, _cache = _open_service(args)
    if args.job_ids:
        records = [store.get(job_id) for job_id in args.job_ids]
    else:
        records = store.list_jobs()
    if not records:
        print("no jobs")
        return 0
    for record in records:
        print(_progress_line(record))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    store, _cache = _open_service(args)
    deadline = time.monotonic() + args.timeout if args.timeout is not None else None
    last = None
    while True:
        record = store.get(args.job_id)
        line = _progress_line(record)
        if line != last:
            print(line, flush=True)
            last = line
        if record.terminal:
            return 0 if record.state == "done" else 1
        if deadline is not None and time.monotonic() >= deadline:
            print(f"watch timed out after {args.timeout}s", file=sys.stderr)
            return 2
        time.sleep(args.interval)


def _cmd_run_workers(args: argparse.Namespace) -> int:
    store, cache = _open_service(args)
    shutdown = threading.Event()

    def handle_signal(signum: int, _frame: Any) -> None:
        print(
            f"received {signal.Signals(signum).name}; finishing the current "
            "chunk and requeueing in-flight work",
            flush=True,
        )
        shutdown.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, handle_signal)
    processed = run_worker_loop(
        store,
        cache,
        jobs=args.jobs,
        poll_interval=args.poll,
        idle_exit=args.idle_exit,
        max_jobs=args.max_jobs,
        cancel=shutdown.is_set,
        log=lambda message: print(message, flush=True),
    )
    print(f"processed {processed} job(s)")
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    store, _cache = _open_service(args)
    record = store.get(args.job_id)
    if record.state != "done":
        print(
            f"job {record.job_id} is {record.state}, not done"
            + (f" ({record.error})" if record.error else ""),
            file=sys.stderr,
        )
        return 1
    payload = record.result or {}
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if record.kind == "sweep":
        result = SweepResult(
            n_trials=int(payload.get("n_trials", 0) or len(payload["trial_rows"])),
            trial_rows=payload["trial_rows"],
            specs=payload.get("specs") or [],
        )
        print(result.format_text())
    else:
        print(payload.get("report", ""))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--service-dir",
        type=pathlib.Path,
        default=DEFAULT_SERVICE_DIR,
        metavar="DIR",
        help="service state directory (default: .repro-service)",
    )
    common.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="result cache directory (default: <service-dir>/cache)",
    )

    parser = argparse.ArgumentParser(
        prog="repro-service",
        description=(
            "Long-lived experiment service: a crash-tolerant job queue with "
            "resumable sweep execution over the content-addressed result cache."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", parents=[common], help="enqueue a sweep or experiment job"
    )
    what = submit.add_mutually_exclusive_group(required=True)
    what.add_argument("--experiment", metavar="ID", help="registered experiment id")
    what.add_argument("--builder", metavar="NAME", help="scenario builder name")
    what.add_argument("--preset", metavar="NAME", help="scenario preset name")
    submit.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="K=V",
        help="experiment option (repeatable; values parsed as JSON)",
    )
    submit.add_argument(
        "--scenario-arg",
        action="append",
        default=[],
        metavar="K=V",
        help="scenario builder kwarg (repeatable; values parsed as JSON)",
    )
    submit.add_argument("--trials", type=int, default=8, metavar="N")
    submit.add_argument("--epochs", type=int, default=2, metavar="E")
    submit.add_argument("--seed", default="service", metavar="SEED")
    submit.add_argument("--label", default=None, metavar="LABEL")
    submit.add_argument(
        "--chunk-size", type=int, default=SWEEP_CHUNK_SIZE, metavar="C"
    )
    submit.add_argument(
        "--max-attempts", type=int, default=DEFAULT_MAX_ATTEMPTS, metavar="A"
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock budget (checked between chunks)",
    )
    submit.set_defaults(func=_cmd_submit)

    status = commands.add_parser(
        "status", parents=[common], help="show job states and progress"
    )
    status.add_argument("job_ids", nargs="*", metavar="JOB")
    status.set_defaults(func=_cmd_status)

    watch = commands.add_parser(
        "watch", parents=[common], help="stream one job's progress until it ends"
    )
    watch.add_argument("job_id", metavar="JOB")
    watch.add_argument("--interval", type=float, default=0.2, metavar="SECONDS")
    watch.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up (exit 2) after this long without a terminal state",
    )
    watch.set_defaults(func=_cmd_watch)

    workers = commands.add_parser(
        "run-workers", parents=[common], help="process the job queue"
    )
    workers.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per sweep job's trial chunks",
    )
    workers.add_argument(
        "--poll", type=float, default=DEFAULT_POLL_INTERVAL, metavar="SECONDS"
    )
    workers.add_argument(
        "--idle-exit",
        action="store_true",
        help="exit once the queue is empty instead of polling forever",
    )
    workers.add_argument("--max-jobs", type=int, default=None, metavar="N")
    workers.set_defaults(func=_cmd_run_workers)

    results = commands.add_parser(
        "results", parents=[common], help="print a finished job's rows/report"
    )
    results.add_argument("job_id", metavar="JOB")
    results.add_argument(
        "--json", action="store_true", help="emit the raw result payload as JSON"
    )
    results.set_defaults(func=_cmd_results)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
