"""Job execution for the experiment service.

The executor turns persisted job records into results:

* **Sweep jobs** run through :func:`repro.sim.sweeps.run_sweep_resumable`
  — per-trial granularity in the :class:`~repro.cache.ResultCache`, each
  finished chunk stored immediately and streamed into the job record's
  progress counters.  A job killed at any point (SIGKILL included)
  resumes on the next claim from exactly the trials already stored.
* **Experiment jobs** run a registered experiment through the exact
  cache address the CLI runner uses
  (:func:`repro.experiments.runner.run_cached_experiment`), so service
  jobs and ``repro-experiments --cache-dir`` runs replay each other's
  results.

Failures are retried within the job's attempt budget; per-job timeouts
are enforced between chunks via the cancellable dispatch
(:class:`~repro.core.trials.DispatchCancelled`); a graceful shutdown
(``cancel`` turning true) requeues the in-flight job with its attempt
refunded — the already-persisted chunks make the interruption free.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.cache import ResultCache
from repro.core.trials import DispatchCancelled
from repro.service.jobs import JobRecord, JobStore
from repro.sim.sweeps import SWEEP_CHUNK_SIZE, ScenarioSpec, run_sweep_resumable

#: How the worker loop sleeps between queue polls when idle.
DEFAULT_POLL_INTERVAL = 0.2


def execute_job(
    record: JobRecord,
    store: JobStore,
    cache: ResultCache,
    *,
    jobs: Optional[int] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> JobRecord:
    """Execute one claimed (``running``) job to its next state.

    Terminal outcomes: ``done`` (result attached to the record) or
    ``failed`` (attempt budget exhausted).  Non-terminal: back to
    ``queued``, either with the attempt consumed (retryable failure,
    timeout) or refunded (graceful shutdown via ``cancel``).
    """
    deadline = (
        time.monotonic() + record.timeout if record.timeout is not None else None
    )

    def timed_out() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def should_stop() -> bool:
        return (cancel is not None and cancel()) or timed_out()

    try:
        if record.kind == "sweep":
            result = _execute_sweep(record, store, cache, jobs, should_stop)
        elif record.kind == "experiment":
            result = _execute_experiment(record, store, cache)
        else:
            raise ValueError(f"unknown job kind {record.kind!r}")
    except DispatchCancelled:
        if timed_out():
            _retry_or_fail(
                record, store, f"attempt timed out after {record.timeout}s"
            )
        else:
            store.requeue(record, consume_attempt=False)
    except Exception as exc:  # noqa: BLE001 — job isolation: any failure retries
        _retry_or_fail(record, store, f"{type(exc).__name__}: {exc}")
    else:
        store.finish(record, result)
    return record


def _execute_sweep(
    record: JobRecord,
    store: JobStore,
    cache: ResultCache,
    jobs: Optional[int],
    should_stop: Callable[[], bool],
) -> Dict[str, Any]:
    spec = record.spec
    scenario_specs = [ScenarioSpec.from_canonical(entry) for entry in spec["specs"]]
    n_trials = int(spec["n_trials"])
    chunk_size = int(spec.get("chunk_size") or SWEEP_CHUNK_SIZE)

    def progress(done: int, total: int, cached: int) -> None:
        record.progress = {"total": total, "done": done, "cached": cached}
        store.save(record)  # heartbeat + the stream `watch` tails

    result = run_sweep_resumable(
        scenario_specs,
        n_trials,
        cache,
        jobs=jobs,
        chunk_size=chunk_size,
        progress=progress,
        cancel=should_stop,
    )
    return {
        "trial_rows": result.rows(),
        "specs": result.specs,
        "n_trials": n_trials,
    }


def _execute_experiment(
    record: JobRecord, store: JobStore, cache: ResultCache
) -> Dict[str, Any]:
    # Imported here: the runner imports the full experiment registry,
    # which sweep-only deployments never need to load.
    from repro.experiments.runner import run_cached_experiment

    record.progress = {"total": 1, "done": 0, "cached": 0}
    store.save(record)
    options = dict(record.spec.get("options") or {})
    payload, hit = run_cached_experiment(record.spec["experiment"], options, cache)
    record.progress = {"total": 1, "done": 1, "cached": int(hit)}
    return payload


def _retry_or_fail(record: JobRecord, store: JobStore, error: str) -> None:
    if record.attempts >= record.max_attempts:
        store.fail(record, error)
    else:
        store.requeue(record, error=error, consume_attempt=True)


def run_worker_loop(
    store: JobStore,
    cache: ResultCache,
    *,
    jobs: Optional[int] = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    idle_exit: bool = False,
    max_jobs: Optional[int] = None,
    cancel: Optional[Callable[[], bool]] = None,
    log: Optional[Callable[[str], Any]] = None,
) -> int:
    """Claim and execute queued jobs until stopped; returns jobs processed.

    Startup first runs :meth:`JobStore.recover`, requeueing jobs whose
    previous worker died — the restart half of kill-tolerance.  The loop
    then claims the oldest queued job, executes it (``jobs`` worker
    processes for its trial chunks), and repeats.  ``idle_exit`` returns
    when the queue drains (the scripted/CI mode); otherwise the loop
    polls every ``poll_interval`` seconds.  ``cancel`` turning true stops
    the loop; an in-flight job is requeued with its attempt refunded.
    """
    emit = log if log is not None else (lambda message: None)
    for record in store.recover():
        emit(f"recovered {record.job_id}: worker died, state now {record.state}")
    processed = 0
    while not (cancel is not None and cancel()):
        claimed = None
        for candidate in store.list_jobs(states=("queued",)):
            claimed = store.claim(candidate.job_id)
            if claimed is not None:
                break
        if claimed is None:
            if idle_exit:
                break
            time.sleep(poll_interval)
            continue
        emit(
            f"running {claimed.job_id} ({claimed.kind}, "
            f"attempt {claimed.attempts}/{claimed.max_attempts})"
        )
        execute_job(claimed, store, cache, jobs=jobs, cancel=cancel)
        emit(f"{claimed.job_id}: {claimed.state}")
        processed += 1
        if max_jobs is not None and processed >= max_jobs:
            break
    return processed
