"""Persistent on-disk job store for the experiment service.

One JSON file per job under ``<service-dir>/jobs/``, written atomically
with the result cache's :func:`~repro.cache.atomic_write_text`
discipline — a job record is always either the old version or the new
one, never a torn write, so ``watch`` can tail it and a crashed worker
leaves a readable record behind.

Claiming is made safe against concurrent worker processes with an
``O_EXCL`` lock file per job under ``<service-dir>/locks/``: exactly one
claimer wins, and :meth:`JobStore.recover` reclaims locks whose worker
pid is dead (the SIGKILL path) by requeueing the job.  Progress already
persisted per-trial in the result cache survives regardless, so a
requeued job resumes instead of restarting.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cache import atomic_write_text

#: The job lifecycle.  ``queued`` and ``running`` are live; ``done`` and
#: ``failed`` are terminal.  A retryable failure moves ``running`` back
#: to ``queued`` (with the attempt consumed) rather than to ``failed``.
JOB_STATES = ("queued", "running", "done", "failed")

#: Default per-job attempt budget: the first run plus two retries.
DEFAULT_MAX_ATTEMPTS = 3


def _pid_alive(pid: Optional[int]) -> bool:
    """Best-effort liveness probe of a worker pid on this host."""
    if pid is None:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@dataclass
class JobRecord:
    """One experiment-service job, as persisted in its JSON record.

    ``kind`` is ``"sweep"`` (``spec`` holds canonical
    :class:`~repro.sim.sweeps.ScenarioSpec` dicts plus ``n_trials``) or
    ``"experiment"`` (``spec`` holds a registered experiment id plus its
    options).  ``progress`` streams ``{"total", "done", "cached"}`` trial
    counters as chunks complete; ``attempts`` counts claims against
    ``max_attempts``; ``timeout`` bounds one attempt's wall-clock seconds
    (checked between chunks).
    """

    job_id: str
    kind: str
    spec: Dict[str, Any]
    state: str = "queued"
    attempts: int = 0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    timeout: Optional[float] = None
    progress: Dict[str, int] = field(
        default_factory=lambda: {"total": 0, "done": 0, "cached": 0}
    )
    error: Optional[str] = None
    worker_pid: Optional[int] = None
    created_at: float = 0.0
    updated_at: float = 0.0
    result: Optional[Dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 — field names
        return cls(**{k: v for k, v in data.items() if k in known})


class JobStore:
    """The on-disk job queue: submit, claim, progress, recover.

    All state lives under ``root``: ``jobs/<id>.json`` records and
    ``locks/<id>.lock`` claim files.  Every record write is atomic; every
    state transition is written through :meth:`save`, so the queue
    survives any crash at any point.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.jobs_dir = self.root / "jobs"
        self.locks_dir = self.root / "locks"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.locks_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def job_path(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / f"{job_id}.json"

    def lock_path(self, job_id: str) -> pathlib.Path:
        return self.locks_dir / f"{job_id}.lock"

    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        spec: Dict[str, Any],
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        timeout: Optional[float] = None,
        job_id: Optional[str] = None,
    ) -> JobRecord:
        """Enqueue a new job; returns its (saved) record."""
        if kind not in ("sweep", "experiment"):
            raise ValueError(f"unknown job kind {kind!r}")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if job_id is None:
            job_id = f"{time.time_ns():x}-{uuid.uuid4().hex[:6]}"
        if self.job_path(job_id).exists():
            raise ValueError(f"job {job_id!r} already exists")
        record = JobRecord(
            job_id=job_id,
            kind=kind,
            spec=spec,
            max_attempts=max_attempts,
            timeout=timeout,
            created_at=time.time(),
        )
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        """Persist ``record`` atomically (stamps ``updated_at``)."""
        record.updated_at = time.time()
        atomic_write_text(
            self.job_path(record.job_id),
            json.dumps(record.to_dict(), indent=2) + "\n",
        )

    def get(self, job_id: str) -> JobRecord:
        path = self.job_path(job_id)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            raise KeyError(f"unknown job {job_id!r}") from None
        return JobRecord.from_dict(json.loads(raw))

    def list_jobs(self, states: Optional[Sequence[str]] = None) -> List[JobRecord]:
        """All jobs (optionally filtered by state), oldest first."""
        records = []
        for path in self.jobs_dir.glob("*.json"):
            try:
                record = JobRecord.from_dict(json.loads(path.read_text()))
            except (OSError, ValueError, TypeError):
                continue  # a record mid-replace or foreign file: skip
            if states is None or record.state in states:
                records.append(record)
        records.sort(key=lambda record: (record.created_at, record.job_id))
        return records

    # ------------------------------------------------------------------
    def claim(self, job_id: str) -> Optional[JobRecord]:
        """Atomically claim a queued job; ``None`` if someone else won.

        The ``O_EXCL`` lock file makes the claim race-free across worker
        processes; the claim consumes one attempt and moves the record to
        ``running`` with this process's pid (the liveness token
        :meth:`recover` probes).
        """
        try:
            fd = os.open(
                self.lock_path(job_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return None
        with os.fdopen(fd, "w") as handle:
            handle.write(str(os.getpid()))
        record = self.get(job_id)
        if record.state != "queued":
            self.release(job_id)
            return None
        record.state = "running"
        record.worker_pid = os.getpid()
        record.attempts += 1
        record.error = None
        self.save(record)
        return record

    def release(self, job_id: str) -> None:
        self.lock_path(job_id).unlink(missing_ok=True)

    def requeue(
        self,
        record: JobRecord,
        *,
        error: Optional[str] = None,
        consume_attempt: bool = True,
    ) -> None:
        """Put a running job back on the queue (retry or graceful shutdown).

        A retryable failure keeps the attempt consumed at claim time; a
        graceful shutdown refunds it — being interrupted is not the
        job's fault, and its per-trial progress is already in the cache.
        """
        record.state = "queued"
        record.worker_pid = None
        record.error = error
        if not consume_attempt:
            record.attempts = max(0, record.attempts - 1)
        self.save(record)
        self.release(record.job_id)

    def finish(self, record: JobRecord, result: Optional[Dict[str, Any]]) -> None:
        record.state = "done"
        record.worker_pid = None
        record.error = None
        record.result = result
        self.save(record)
        self.release(record.job_id)

    def fail(self, record: JobRecord, error: str) -> None:
        record.state = "failed"
        record.worker_pid = None
        record.error = error
        self.save(record)
        self.release(record.job_id)

    # ------------------------------------------------------------------
    def recover(self) -> List[JobRecord]:
        """Requeue running jobs whose worker died; returns what changed.

        The restart half of crash tolerance: a job whose claimant pid no
        longer exists (SIGKILL, OOM, power loss) goes back to ``queued``
        — its crashed attempt stays consumed, and a job that already
        exhausted its budget fails instead of looping forever.  The
        per-trial results its worker stored before dying remain in the
        cache, so the requeued job resumes rather than restarts.
        """
        recovered = []
        for record in self.list_jobs(states=("running",)):
            if _pid_alive(record.worker_pid):
                continue
            self.release(record.job_id)
            if record.attempts >= record.max_attempts:
                self.fail(record, "worker died and the attempt budget is exhausted")
            else:
                self.requeue(record, error="worker died; requeued")
            recovered.append(record)
        return recovered
