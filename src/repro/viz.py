"""Minimal text-based plotting helpers.

The reproduction has no plotting dependency (the environment is offline),
so the examples and experiment reports render series as ASCII charts and
sparklines.  The functions are deliberately simple: fixed-size canvas,
monotone x grid, no axes beyond min/max labels.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Unicode blocks used by :func:`sparkline`, from lowest to highest.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render ``values`` as a one-line unicode sparkline.

    ``width`` resamples the series to at most that many characters.
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if width is not None and width > 0 and len(series) > width:
        step = len(series) / width
        series = [series[int(i * step)] for i in range(width)]
    low, high = min(series), max(series)
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[0] * len(series)
    chars = []
    for value in series:
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (x, y) series on a shared ASCII canvas.

    ``series`` maps a label to an ``(x_values, y_values)`` pair.  Each series
    is drawn with its own marker character (cycling through ``*+o#@``).
    Returns the chart as a multi-line string.
    """
    if width < 10 or height < 4:
        raise ValueError("canvas too small")
    markers = "*+o#@%&"
    all_x = [float(x) for xs, _ in series.values() for x in xs]
    all_y = [float(y) for _, ys in series.values() for y in ys]
    if not all_x or not all_y:
        return "(empty plot)"
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (label, (xs, ys)) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            column = int((float(x) - x_min) / x_span * (width - 1))
            row = int((float(y) - y_min) / y_span * (height - 1))
            canvas[height - 1 - row][column] = marker

    lines = []
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_min:.3g}".ljust(width // 2) + f"{x_max:.3g}".rjust(width - width // 2)
    lines.append(" " * (gutter + 1) + x_axis)
    if x_label or y_label:
        lines.append(" " * (gutter + 1) + f"x: {x_label}   y: {y_label}".strip())
    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def format_table(rows: List[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    if not rows:
        return "(empty table)"
    headers = list(columns) if columns is not None else list(rows[0].keys())
    rendered_rows = [
        [_format_cell(row.get(column)) for column in headers] for row in rows
    ]
    widths = [
        max(len(header), *(len(row[i]) for row in rendered_rows))
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
