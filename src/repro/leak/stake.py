"""Continuous stake functions during an inactivity leak (Section 4.3).

The paper models the stake of a validator as a continuous, differentiable
function satisfying ``s'(t) = -I(t) * s(t) / 2**26`` (Equation 3) and
derives, for the three reference behaviours:

* active validators:      ``s(t) = s0``
* semi-active validators: ``s(t) = s0 * exp(-3 t^2 / 2**28)``
* inactive validators:    ``s(t) = s0 * exp(-t^2 / 2**25)``

This module exposes those closed forms, their inactivity-score
counterparts, and the ejection-crossing times, together with a generic
integrator for arbitrary inactivity-score profiles (used by the ablation
benchmarks comparing the continuous model to the discrete protocol rules).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import constants
from repro.spec.config import SpecConfig


class Behavior(str, Enum):
    """The three validator behaviours considered by the paper."""

    ACTIVE = "active"
    SEMI_ACTIVE = "semi-active"
    INACTIVE = "inactive"


# ----------------------------------------------------------------------
# Inactivity-score profiles (Section 4.3, bullet list)
# ----------------------------------------------------------------------
def inactivity_score(behavior: Behavior, t: float) -> float:
    """Average inactivity score at epoch ``t`` for the given behaviour.

    Active: I(t) = 0.  Semi-active: I(t) = 3t/2.  Inactive: I(t) = 4t.
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    if behavior is Behavior.ACTIVE:
        return 0.0
    if behavior is Behavior.SEMI_ACTIVE:
        return 1.5 * t
    return 4.0 * t


# ----------------------------------------------------------------------
# Stake closed forms
# ----------------------------------------------------------------------
def active_stake(t: float, s0: float = constants.MAX_EFFECTIVE_BALANCE_ETH) -> float:
    """Stake of an always-active validator: constant."""
    if t < 0:
        raise ValueError("t must be non-negative")
    return s0


def semi_active_stake(
    t: float,
    s0: float = constants.MAX_EFFECTIVE_BALANCE_ETH,
    quotient: int = constants.INACTIVITY_PENALTY_QUOTIENT,
) -> float:
    """Stake of a semi-active validator: ``s0 * exp(-3 t^2 / (4*quotient))``.

    With the mainnet quotient ``2**26`` this is the paper's
    ``s0 * exp(-3 t^2 / 2**28)``.
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    return s0 * math.exp(-3.0 * t * t / (4.0 * quotient))


def inactive_stake(
    t: float,
    s0: float = constants.MAX_EFFECTIVE_BALANCE_ETH,
    quotient: int = constants.INACTIVITY_PENALTY_QUOTIENT,
) -> float:
    """Stake of an inactive validator: ``s0 * exp(-2 t^2 / quotient)``.

    With the mainnet quotient ``2**26`` this is the paper's
    ``s0 * exp(-t^2 / 2**25)``.
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    return s0 * math.exp(-2.0 * t * t / quotient)


def stake(behavior: Behavior, t: float, s0: float = constants.MAX_EFFECTIVE_BALANCE_ETH) -> float:
    """Stake at epoch ``t`` for the given behaviour (dispatch helper)."""
    if behavior is Behavior.ACTIVE:
        return active_stake(t, s0)
    if behavior is Behavior.SEMI_ACTIVE:
        return semi_active_stake(t, s0)
    return inactive_stake(t, s0)


def stake_decay_exponent(behavior: Behavior) -> float:
    """Coefficient ``c`` such that ``s(t) = s0 * exp(-c * t^2)``.

    Active: 0.  Semi-active: 3/2**28.  Inactive: 1/2**25 (mainnet constants).
    """
    if behavior is Behavior.ACTIVE:
        return 0.0
    if behavior is Behavior.SEMI_ACTIVE:
        return 3.0 / 2 ** 28
    return 1.0 / 2 ** 25


# ----------------------------------------------------------------------
# Ejection times
# ----------------------------------------------------------------------
def continuous_ejection_epoch(
    behavior: Behavior,
    s0: float = constants.MAX_EFFECTIVE_BALANCE_ETH,
    ejection_balance: float = constants.EJECTION_BALANCE_ETH,
) -> Optional[float]:
    """Epoch at which the continuous stake function crosses the ejection balance.

    Returns ``None`` for active validators (never ejected).  For the mainnet
    constants this evaluates to roughly 4661 epochs (inactive) and 7611
    epochs (semi-active); the paper reports 4685 and 7652 from its own
    numerical evaluation — see DESIGN.md for the calibration note.
    """
    if behavior is Behavior.ACTIVE:
        return None
    coefficient = stake_decay_exponent(behavior)
    ratio = math.log(s0 / ejection_balance)
    return math.sqrt(ratio / coefficient)


@dataclass(frozen=True)
class StakeTrajectory:
    """A sampled stake trajectory for one behaviour (Figure 2 series)."""

    behavior: Behavior
    epochs: Sequence[int]
    stakes: Sequence[float]
    ejection_epoch: Optional[float]

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """Return (epochs, stakes) as numpy arrays."""
        return np.asarray(self.epochs), np.asarray(self.stakes)

    def final_stake(self) -> float:
        """Stake at the last sampled epoch."""
        return self.stakes[-1]


def sample_trajectory(
    behavior: Behavior,
    max_epoch: int,
    step: int = 1,
    s0: float = constants.MAX_EFFECTIVE_BALANCE_ETH,
    ejection_balance: float = constants.EJECTION_BALANCE_ETH,
    freeze_after_ejection: bool = True,
) -> StakeTrajectory:
    """Sample the continuous stake function on ``range(0, max_epoch + 1, step)``.

    If ``freeze_after_ejection`` is set (the default, matching Figure 2),
    the stake stops decaying once it crosses the ejection balance because
    the validator has left the active set.
    """
    if max_epoch < 0:
        raise ValueError("max_epoch must be non-negative")
    if step <= 0:
        raise ValueError("step must be positive")
    ejection = continuous_ejection_epoch(behavior, s0, ejection_balance)
    epochs = list(range(0, max_epoch + 1, step))
    stakes: List[float] = []
    for epoch in epochs:
        if freeze_after_ejection and ejection is not None and epoch >= ejection:
            stakes.append(stake(behavior, ejection, s0))
        else:
            stakes.append(stake(behavior, float(epoch), s0))
    return StakeTrajectory(
        behavior=behavior,
        epochs=epochs,
        stakes=stakes,
        ejection_epoch=ejection,
    )


# ----------------------------------------------------------------------
# Generic integrator for arbitrary score profiles
# ----------------------------------------------------------------------
def integrate_stake(
    score_profile: Callable[[float], float],
    max_epoch: int,
    s0: float = constants.MAX_EFFECTIVE_BALANCE_ETH,
    quotient: int = constants.INACTIVITY_PENALTY_QUOTIENT,
    samples_per_epoch: int = 4,
) -> List[float]:
    """Numerically integrate ``s'(t) = -I(t) s(t) / quotient`` (Equation 3).

    ``score_profile`` maps an epoch (float) to the inactivity score.  The
    exact solution is ``s(t) = s0 * exp(-(1/quotient) * \\int_0^t I(u) du)``;
    we integrate the exponent with the trapezoidal rule, which is exact for
    the paper's piecewise-linear score profiles.
    Returns the stake sampled at integer epochs 0..max_epoch.
    """
    if max_epoch < 0:
        raise ValueError("max_epoch must be non-negative")
    grid = np.linspace(0.0, max_epoch, max_epoch * samples_per_epoch + 1)
    scores = np.array([score_profile(float(u)) for u in grid])
    # Cumulative integral of the score.
    cumulative = np.concatenate(
        ([0.0], np.cumsum((scores[1:] + scores[:-1]) / 2.0 * np.diff(grid)))
    )
    stakes_on_grid = s0 * np.exp(-cumulative / quotient)
    epochs = np.arange(0, max_epoch + 1)
    return list(np.interp(epochs, grid, stakes_on_grid))
