"""Epoch-level aggregate simulation of the inactivity leak.

Each *branch* of a fork is simulated independently (exactly as the paper
analyses them): per epoch, groups of validators are deemed active or
inactive on the branch, the discrete inactivity-score and penalty rules
(Equations 1 and 2) are applied, low-balance validators are ejected, and
justification/finalization is recorded whenever the active stake reaches a
supermajority in consecutive epochs.

This is the discrete ground truth against which the paper's continuous
closed forms (:mod:`repro.analysis`) are validated, and the engine behind
the long-horizon scenario experiments (Tables 2 and 3, Figures 3 and 7).

The per-epoch stake/score/ejection arithmetic is delegated to the shared
:class:`repro.core.StakeEngine` (one ledger entry per group), so this
module only owns the branch bookkeeping: activity patterns, records, and
justification/finalization via :class:`repro.core.FinalityTracker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.backend import StakeBackend
from repro.core.stake_engine import FinalityTracker, StakeEngine
from repro.leak.groups import BranchView, GroupLedger, GroupSpec
from repro.spec.config import SpecConfig


@dataclass
class EpochRecord:
    """Per-epoch observables of one branch."""

    epoch: int
    active_ratio: float
    byzantine_proportion: float
    in_leak: bool
    justified: bool
    finalized: bool
    group_stakes: Dict[str, float]
    ejected_groups: Tuple[str, ...] = ()


@dataclass
class BranchResult:
    """Full history of one simulated branch."""

    name: str
    records: List[EpochRecord] = field(default_factory=list)
    #: First epoch (relative to the simulation start) at which the active
    #: ratio reached the supermajority threshold.
    threshold_epoch: Optional[int] = None
    #: First epoch at which a post-fork checkpoint was finalized.
    finalization_epoch: Optional[int] = None
    #: Epoch -> groups ejected at that epoch.
    ejections: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    def active_ratio_series(self) -> List[float]:
        """The Figure-3 series: active stake ratio per epoch."""
        return [record.active_ratio for record in self.records]

    def byzantine_proportion_series(self) -> List[float]:
        """The beta(t) series: Byzantine stake proportion per epoch."""
        return [record.byzantine_proportion for record in self.records]

    def max_byzantine_proportion(self) -> float:
        """Largest Byzantine stake proportion observed on this branch."""
        if not self.records:
            return 0.0
        return max(record.byzantine_proportion for record in self.records)

    def stake_series(self, group_name: str) -> List[float]:
        """Per-epoch stake of one group."""
        return [record.group_stakes[group_name] for record in self.records]


@dataclass
class LeakResult:
    """Result of a multi-branch leak simulation."""

    branches: Dict[str, BranchResult]
    config: SpecConfig

    def branch(self, name: str) -> BranchResult:
        """Return the result of the named branch."""
        return self.branches[name]

    def conflicting_finalization_epoch(self) -> Optional[int]:
        """Epoch at which *all* branches have finalized (Safety is lost).

        Conflicting finalization occurs once the slowest branch finalizes
        (Section 5.1); returns ``None`` if some branch never finalized.
        """
        epochs = [result.finalization_epoch for result in self.branches.values()]
        if any(epoch is None for epoch in epochs):
            return None
        return max(epochs)  # type: ignore[type-var]

    def safety_violated(self) -> bool:
        """True when two or more branches finalized conflicting checkpoints."""
        finalized = [
            result
            for result in self.branches.values()
            if result.finalization_epoch is not None
        ]
        return len(finalized) >= 2


class BranchSimulation:
    """Simulates one branch of the fork, epoch by epoch.

    The group ledgers are a dict-of-dataclasses *view* over the flat-array
    :class:`StakeEngine` state; they are kept in sync after every step so
    callers can keep reading ``simulation.ledgers[name].stake``.
    """

    def __init__(
        self,
        name: str,
        groups: Sequence[GroupSpec],
        config: Optional[SpecConfig] = None,
        leak_from_epoch: int = 0,
        stop_leak_on_finalization: bool = True,
        backend: Union[str, StakeBackend] = "auto",
    ) -> None:
        if not groups:
            raise ValueError("a branch needs at least one validator group")
        self.name = name
        self.config = config or SpecConfig.mainnet()
        total_weight = sum(spec.weight for spec in groups)
        if total_weight <= 0:
            raise ValueError("total group weight must be positive")
        self.ledgers: Dict[str, GroupLedger] = {}
        for spec in groups:
            if spec.name in self.ledgers:
                raise ValueError(f"duplicate group name {spec.name!r}")
            normalised = GroupSpec(
                name=spec.name,
                weight=spec.weight / total_weight,
                pattern=spec.pattern,
                byzantine=spec.byzantine,
                initial_stake=spec.initial_stake,
            )
            self.ledgers[spec.name] = GroupLedger(spec=normalised, stake=spec.initial_stake)
        self._group_names: List[str] = [spec.name for spec in groups]
        # step() computes its own weighted sums (a handful of groups), but
        # the engine is a public attribute — give it the real weights so
        # engine.total_stake()/active_ratio() answer correctly for callers.
        self.engine = StakeEngine(
            [self.ledgers[name].stake for name in self._group_names],
            weights=[self.ledgers[name].weight for name in self._group_names],
            config=self.config,
            backend=backend,
        )
        # The branch never reads the per-epoch penalty totals; clone the
        # backend (it may be a caller-supplied shared instance) before
        # switching their reductions off.
        self.engine.backend = self.engine.backend.clone()
        self.engine.backend.track_penalty_totals = False
        self.leak_from_epoch = leak_from_epoch
        self.stop_leak_on_finalization = stop_leak_on_finalization
        self.result = BranchResult(name=name)
        self._finality = FinalityTracker.for_config(self.config)

    # ------------------------------------------------------------------
    def _in_leak(self, epoch: int) -> bool:
        if epoch < self.leak_from_epoch:
            return False
        if self.stop_leak_on_finalization and self._finality.finalized:
            return False
        return True

    def _sync_ledgers(self, epoch: int) -> List[str]:
        """Mirror the engine arrays back into the group ledgers."""
        ejected_now: List[str] = []
        for position, name in enumerate(self._group_names):
            ledger = self.ledgers[name]
            ledger.stake = float(self.engine.stakes[position])
            ledger.inactivity_score = float(self.engine.scores[position])
            if bool(self.engine.ejected[position]) and not ledger.ejected:
                ledger.ejected = True
                ledger.ejection_epoch = epoch
                ejected_now.append(name)
        return ejected_now

    # ------------------------------------------------------------------
    def step(self, epoch: int) -> EpochRecord:
        """Process one epoch and return its record."""
        in_leak = self._in_leak(epoch)
        view = BranchView(
            branch_name=self.name,
            epoch=epoch,
            previous_active_ratio=self._finality.previous_active_ratio,
            in_leak=in_leak,
            finalized=self._finality.finalized,
        )

        # 1. Decide activity of each (non-ejected) group this epoch.
        active_flags = [
            (not self.ledgers[name].ejected)
            and self.ledgers[name].spec.pattern(epoch, view)
            for name in self._group_names
        ]

        # 2-4. Penalties (Eq. 2), score updates (Eq. 1) and ejections, all
        # delegated to the shared kernel in protocol order.
        self.engine.step(np.array(active_flags, dtype=bool), in_leak=in_leak)
        ejected_now = self._sync_ledgers(epoch)
        if ejected_now:
            self.result.ejections[epoch] = tuple(ejected_now)

        # 5. Compute the active-stake ratio and run justification/finalization.
        # Groups are few, so the weighted sums stay plain Python (cheaper
        # than array reductions on 2-5 entries, and the exact arithmetic of
        # the pre-engine implementation).
        total = sum(ledger.weighted_stake() for ledger in self.ledgers.values())
        active_stake = sum(
            self.ledgers[name].weighted_stake()
            for name, is_active in zip(self._group_names, active_flags)
            if is_active and not self.ledgers[name].ejected
        )
        ratio = active_stake / total if total > 0 else 0.0
        justified, finalized_now = self._finality.observe(epoch, ratio)
        self.result.threshold_epoch = self._finality.threshold_epoch
        self.result.finalization_epoch = self._finality.finalization_epoch

        byz_stake = sum(
            ledger.weighted_stake()
            for ledger in self.ledgers.values()
            if ledger.spec.byzantine
        )
        record = EpochRecord(
            epoch=epoch,
            active_ratio=ratio,
            byzantine_proportion=byz_stake / total if total > 0 else 0.0,
            in_leak=in_leak,
            justified=justified,
            finalized=finalized_now,
            group_stakes={
                name: ledger.effective_stake for name, ledger in self.ledgers.items()
            },
            ejected_groups=tuple(ejected_now),
        )
        self.result.records.append(record)
        return record

    def run(self, max_epochs: int, stop_on_finalization: bool = False) -> BranchResult:
        """Run the branch for up to ``max_epochs`` epochs."""
        for epoch in range(max_epochs):
            self.step(epoch)
            if stop_on_finalization and self._finality.finalized:
                break
        return self.result


@dataclass
class LeakSimulation:
    """A multi-branch leak simulation (one branch per partition)."""

    branch_specs: Dict[str, Sequence[GroupSpec]]
    config: SpecConfig = field(default_factory=SpecConfig.mainnet)
    leak_from_epoch: int = 0
    backend: Union[str, StakeBackend] = "auto"

    def run(self, max_epochs: int, stop_on_all_finalized: bool = True) -> LeakResult:
        """Simulate every branch for up to ``max_epochs`` epochs."""
        simulations = {
            name: BranchSimulation(
                name=name,
                groups=specs,
                config=self.config,
                leak_from_epoch=self.leak_from_epoch,
                backend=self.backend,
            )
            for name, specs in self.branch_specs.items()
        }
        for epoch in range(max_epochs):
            for simulation in simulations.values():
                simulation.step(epoch)
            if stop_on_all_finalized and all(
                simulation.result.finalization_epoch is not None
                for simulation in simulations.values()
            ):
                break
        return LeakResult(
            branches={name: sim.result for name, sim in simulations.items()},
            config=self.config,
        )
