"""Post-leak recovery dynamics.

The paper notes (Figure 3 discussion) that once a branch regains a 2/3
supermajority and finalizes, the inactivity leak ends but "the ratio still
increases several epochs after the proportion of 2/3 ... is reached.  This
is because the penalties for inactive validators take some time to return
to zero": the inactivity scores accumulated during the leak keep charging
penalties until they decay (by 16 per epoch outside the leak, Section 4.1).

This module models that tail: given the score reached at the end of the
leak, it computes how many epochs of residual penalties follow, how much
extra stake is lost, and the full post-leak stake trajectory.  It is used
by the recovery ablation benchmark and by the leak-exit tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro import constants
from repro.spec.config import SpecConfig


@dataclass(frozen=True)
class RecoveryTrajectory:
    """Stake and score trajectory after the leak has ended."""

    #: Score at the moment finalization resumed.
    initial_score: float
    #: Stake at the moment finalization resumed.
    initial_stake: float
    #: Per-epoch scores after the leak (index 0 = first post-leak epoch).
    scores: List[float]
    #: Per-epoch stakes after the leak.
    stakes: List[float]

    @property
    def epochs_to_zero_score(self) -> int:
        """Number of post-leak epochs until the score returns to zero."""
        for index, score in enumerate(self.scores):
            if score == 0:
                return index + 1
        return len(self.scores)

    @property
    def residual_loss(self) -> float:
        """Stake lost after the leak ended (the recovery tail)."""
        return self.initial_stake - self.stakes[-1] if self.stakes else 0.0

    @property
    def final_stake(self) -> float:
        """Stake once the score has fully decayed."""
        return self.stakes[-1] if self.stakes else self.initial_stake


def epochs_to_clear_score(
    score: float, config: Optional[SpecConfig] = None, active: bool = True
) -> int:
    """Epochs needed for an inactivity score to return to zero after the leak.

    Outside the leak every score drops by ``inactivity_score_recovery_no_leak``
    (16) per epoch, plus 1 more if the validator is active (Equation 1).
    """
    cfg = config or SpecConfig.mainnet()
    per_epoch = cfg.inactivity_score_recovery_no_leak + (
        cfg.inactivity_score_recovery if active else -cfg.inactivity_score_bias
    )
    if per_epoch <= 0:
        raise ValueError("the score never clears for an inactive validator outside a leak "
                         "with these parameters")
    return max(0, math.ceil(score / per_epoch))


def simulate_recovery(
    initial_score: float,
    initial_stake: float,
    config: Optional[SpecConfig] = None,
    active: bool = True,
    leak_still_running: bool = False,
    max_epochs: int = 10_000,
) -> RecoveryTrajectory:
    """Simulate the post-leak epochs until the inactivity score reaches zero.

    ``leak_still_running=True`` models the paper's subtle point in
    Section 5.1/Figure 3: on the branch that has *not* finalized yet, the
    leak (and therefore the per-epoch penalty) continues while the score
    decays only by 1 per active epoch.
    """
    cfg = config or SpecConfig.mainnet()
    if initial_score < 0 or initial_stake < 0:
        raise ValueError("score and stake must be non-negative")
    score = float(initial_score)
    stake = float(initial_stake)
    scores: List[float] = []
    stakes: List[float] = []
    for _ in range(max_epochs):
        if score <= 0:
            break
        if leak_still_running:
            stake = max(0.0, stake - score * stake / cfg.inactivity_penalty_quotient)
        if active:
            score = max(0.0, score - cfg.inactivity_score_recovery)
        else:
            score += cfg.inactivity_score_bias
        if not leak_still_running:
            score = max(0.0, score - cfg.inactivity_score_recovery_no_leak)
        scores.append(score)
        stakes.append(stake)
    if not scores:
        scores, stakes = [score], [stake]
    return RecoveryTrajectory(
        initial_score=initial_score,
        initial_stake=initial_stake,
        scores=scores,
        stakes=stakes,
    )


def leak_exit_score(leak_duration: int, config: Optional[SpecConfig] = None) -> float:
    """Score of a validator that was inactive for the whole leak of ``leak_duration`` epochs."""
    cfg = config or SpecConfig.mainnet()
    if leak_duration < 0:
        raise ValueError("leak_duration must be non-negative")
    return float(cfg.inactivity_score_bias * leak_duration)


def recovery_tail_epochs(leak_duration: int, config: Optional[SpecConfig] = None) -> int:
    """How many epochs after the leak the ex-inactive validators keep a non-zero score.

    This is the paper's "penalties take some time to return to zero" tail on
    Figure 3: a validator inactive for the whole leak exits it with score
    ``4 * leak_duration`` and clears it at ``(16 + 1)`` per epoch once it is
    active again on the finalized branch.
    """
    cfg = config or SpecConfig.mainnet()
    return epochs_to_clear_score(leak_exit_score(leak_duration, cfg), cfg, active=True)
