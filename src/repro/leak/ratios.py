"""Closed-form ratios of active and Byzantine stake during the leak.

These are the paper's Equations 5, 8, 10, 11 and 13, expressed with the
continuous stake functions of :mod:`repro.leak.stake`.  All functions take
the time ``t`` in epochs since the start of the inactivity leak.

Notation (Section 5):

* ``p0``    — initial proportion of *honest* validators active on the branch,
* ``beta0`` — initial proportion of Byzantine stake (0 <= beta0 < 1/3),
* on the other branch of the fork, exchange ``p0`` and ``1 - p0``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro import constants
from repro.leak.stake import Behavior, semi_active_stake, inactive_stake


def _validate_p0(p0: float) -> None:
    if not 0.0 <= p0 <= 1.0:
        raise ValueError(f"p0 must lie in [0, 1], got {p0}")


def _validate_beta0(beta0: float) -> None:
    if not 0.0 <= beta0 < 1.0:
        raise ValueError(f"beta0 must lie in [0, 1), got {beta0}")


def _inactive_decay(t: float) -> float:
    """``exp(-t^2 / 2**25)`` — the inactive stake decay factor."""
    return inactive_stake(t, s0=1.0)


def _semi_active_decay(t: float) -> float:
    """``exp(-3 t^2 / 2**28)`` — the semi-active stake decay factor."""
    return semi_active_stake(t, s0=1.0)


# ----------------------------------------------------------------------
# Equation 5 — honest-only branch
# ----------------------------------------------------------------------
def active_ratio_honest_only(t: float, p0: float) -> float:
    """Ratio of active stake on a branch with only honest validators (Eq. 5).

    ``p0 / (p0 + (1 - p0) * exp(-t^2 / 2**25))``.
    """
    _validate_p0(p0)
    if t < 0:
        raise ValueError("t must be non-negative")
    numerator = p0
    denominator = p0 + (1.0 - p0) * _inactive_decay(t)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


# ----------------------------------------------------------------------
# Equation 8 — Byzantine active on both branches (slashable behaviour)
# ----------------------------------------------------------------------
def active_ratio_with_slashing_byzantine(t: float, p0: float, beta0: float) -> float:
    """Ratio of active stake when Byzantine validators attest on both branches (Eq. 8).

    ``(p0(1-b) + b) / (p0(1-b) + b + (1-p0)(1-b) exp(-t^2/2**25))``.
    """
    _validate_p0(p0)
    _validate_beta0(beta0)
    if t < 0:
        raise ValueError("t must be non-negative")
    active = p0 * (1.0 - beta0) + beta0
    inactive = (1.0 - p0) * (1.0 - beta0) * _inactive_decay(t)
    denominator = active + inactive
    if denominator == 0.0:
        return 0.0
    return active / denominator


# ----------------------------------------------------------------------
# Equation 10 — Byzantine semi-active on both branches (non-slashable)
# ----------------------------------------------------------------------
def active_ratio_with_semi_active_byzantine(t: float, p0: float, beta0: float) -> float:
    """Ratio of active stake when Byzantine validators are semi-active (Eq. 10).

    ``(p0(1-b) + b e^{-3t^2/2**28}) /
      (p0(1-b) + b e^{-3t^2/2**28} + (1-p0)(1-b) e^{-t^2/2**25})``.
    """
    _validate_p0(p0)
    _validate_beta0(beta0)
    if t < 0:
        raise ValueError("t must be non-negative")
    honest_active = p0 * (1.0 - beta0)
    byzantine = beta0 * _semi_active_decay(t)
    honest_inactive = (1.0 - p0) * (1.0 - beta0) * _inactive_decay(t)
    denominator = honest_active + byzantine + honest_inactive
    if denominator == 0.0:
        return 0.0
    return (honest_active + byzantine) / denominator


# ----------------------------------------------------------------------
# Equation 11 — Byzantine stake proportion over time
# ----------------------------------------------------------------------
def byzantine_proportion(t: float, p0: float, beta0: float) -> float:
    """Byzantine stake proportion beta(t, p0, beta0) on a branch (Eq. 11).

    Byzantine validators are semi-active; honest validators split between
    the active (weight p0) and inactive (weight 1-p0) behaviours.
    """
    _validate_p0(p0)
    _validate_beta0(beta0)
    if t < 0:
        raise ValueError("t must be non-negative")
    byzantine = beta0 * _semi_active_decay(t)
    honest = p0 * (1.0 - beta0) + (1.0 - p0) * (1.0 - beta0) * _inactive_decay(t)
    denominator = honest + byzantine
    if denominator == 0.0:
        return 0.0
    return byzantine / denominator


# ----------------------------------------------------------------------
# Equation 13 — maximum Byzantine proportion, reached at honest ejection
# ----------------------------------------------------------------------
def max_byzantine_proportion(
    p0: float,
    beta0: float,
    ejection_epoch: float = constants.PAPER_INACTIVE_EJECTION_EPOCH,
) -> float:
    """Maximum reachable Byzantine proportion beta_max(p0, beta0) (Eq. 13).

    The maximum is attained when the honest validators that are inactive on
    the branch get ejected (at ``ejection_epoch``, 4685 in the paper): their
    stake drops out of the denominator while the semi-active Byzantine stake
    has only decayed by ``exp(-3 t^2 / 2**28)``.
    """
    _validate_p0(p0)
    _validate_beta0(beta0)
    byzantine = beta0 * _semi_active_decay(ejection_epoch)
    denominator = p0 * (1.0 - beta0) + byzantine
    if denominator == 0.0:
        return 0.0
    return byzantine / denominator


def min_beta0_to_exceed_threshold(
    p0: float,
    threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD,
    ejection_epoch: float = constants.PAPER_INACTIVE_EJECTION_EPOCH,
) -> float:
    """Smallest beta0 such that beta_max(p0, beta0) reaches ``threshold``.

    Solving Eq. 13 for beta0 gives
    ``beta0 = 1 / (1 + decay * (1 - threshold) / (threshold * p0))``
    rearranged below; for p0 = 0.5 and the paper's constants this is the
    0.2421 bound quoted in Section 5.2.3.
    """
    _validate_p0(p0)
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    decay = _semi_active_decay(ejection_epoch)
    if p0 == 0.0:
        return 0.0
    # threshold = b*decay / (p0*(1-b) + b*decay)
    # => threshold * p0 * (1-b) = b * decay * (1 - threshold)
    # => b = threshold*p0 / (threshold*p0 + decay*(1-threshold))... solve:
    numerator = threshold * p0
    denominator = threshold * p0 + decay * (1.0 - threshold)
    return numerator / denominator
