"""Validator groups for the epoch-level aggregate leak simulator.

The paper's long-horizon scenarios only ever distinguish a handful of
validator *classes* (honest-active-on-branch-1, honest-active-on-branch-2,
Byzantine with some strategy).  Within a class all validators share the
same stake trajectory, so the aggregate simulator tracks one ledger entry
per class instead of one per validator — this is what makes simulating
4,000–8,000 epochs at mainnet scale instantaneous while applying exactly
the same discrete update rules as the protocol substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro import constants
from repro.spec.config import SpecConfig

#: An activity pattern decides, per epoch and per branch, whether the
#: validators of a group are deemed active on that branch.  The third
#: argument exposes a read-only view of the branch (stake ratio and leak
#: status) so adaptive Byzantine strategies can react to the branch state.
ActivityPattern = Callable[[int, "BranchView"], bool]


@dataclass(frozen=True)
class BranchView:
    """Read-only per-epoch information handed to activity patterns."""

    branch_name: str
    epoch: int
    #: Ratio of the stake active in the previous epoch to the total stake
    #: still in the active set on this branch (0 at epoch 0).
    previous_active_ratio: float
    #: True if the branch was in an inactivity leak during the previous epoch.
    in_leak: bool
    #: True once the branch has finalized a post-fork checkpoint.
    finalized: bool


# ----------------------------------------------------------------------
# Stock activity patterns (Section 4.3 behaviours)
# ----------------------------------------------------------------------
def always_active(epoch: int, view: BranchView) -> bool:
    """Active every epoch."""
    return True


def never_active(epoch: int, view: BranchView) -> bool:
    """Inactive every epoch (e.g. honest validators stuck in the other partition)."""
    return False


def semi_active_even(epoch: int, view: BranchView) -> bool:
    """Active on even epochs (the paper's semi-active behaviour)."""
    return epoch % 2 == 0


def semi_active_odd(epoch: int, view: BranchView) -> bool:
    """Active on odd epochs (the complementary phase of semi-active)."""
    return epoch % 2 == 1


def pattern_from_name(name: str) -> ActivityPattern:
    """Resolve a behaviour name to an activity pattern."""
    patterns: Dict[str, ActivityPattern] = {
        "active": always_active,
        "inactive": never_active,
        "semi-active": semi_active_even,
        "semi-active-odd": semi_active_odd,
    }
    if name not in patterns:
        raise ValueError(f"unknown behaviour name {name!r}")
    return patterns[name]


@dataclass
class GroupSpec:
    """Specification of a validator group on one branch.

    Attributes
    ----------
    name:
        Group label ("honest-1", "byzantine", ...).
    weight:
        The group's share of the total initial stake (the paper's
        proportions such as ``p0 (1 - beta_0)``).  Weights of one branch
        should sum to 1; they are normalised defensively.
    pattern:
        Activity pattern of the group *on this branch*.
    byzantine:
        Whether the group is controlled by the adversary (used when
        computing the Byzantine stake proportion beta(t)).
    initial_stake:
        Per-validator initial stake (defaults to 32 ETH).
    """

    name: str
    weight: float
    pattern: ActivityPattern
    byzantine: bool = False
    initial_stake: float = constants.MAX_EFFECTIVE_BALANCE_ETH

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("group weight must be non-negative")
        if self.initial_stake <= 0:
            raise ValueError("initial stake must be positive")


@dataclass
class GroupLedger:
    """Mutable per-branch accounting for one group."""

    spec: GroupSpec
    stake: float
    inactivity_score: float = 0.0
    ejected: bool = False
    ejection_epoch: Optional[int] = None

    @property
    def weight(self) -> float:
        return self.spec.weight

    @property
    def effective_stake(self) -> float:
        """Stake counting towards the branch total (0 once ejected)."""
        return 0.0 if self.ejected else self.stake

    def weighted_stake(self) -> float:
        """Stake multiplied by the group's share of the validator set."""
        return self.weight * self.effective_stake
