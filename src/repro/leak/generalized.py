"""A generalized inactivity-penalty mechanism.

The paper closes by noting that penalty mechanisms punishing inactive
validators exist in other PoS designs (Tezos, Polkadot) and calls for their
study under Byzantine behaviour.  This module parameterises the Ethereum
mechanism so the paper's analysis can be replayed under different designs:

* ``score_bias``            — score increment per inactive epoch (Ethereum: 4),
* ``score_recovery``        — score decrement per active epoch (Ethereum: 1),
* ``penalty_quotient``      — penalty divisor (Ethereum: 2**26),
* ``ejection_fraction``     — ejection threshold as a fraction of the initial
                              stake (Ethereum: 16.75/32),
* ``supermajority``         — quorum needed to finalize (Ethereum: 2/3).

All the headline quantities of the paper (stake decay exponents, ejection
epoch, the Safety upper bound of Section 5.1, the Table-2 crossing times,
and the Figure-7 critical Byzantine proportion) become functions of these
parameters, which the ablation benchmarks sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro import constants


@dataclass(frozen=True)
class PenaltyMechanism:
    """Parameters of an inactivity-penalty mechanism."""

    score_bias: float = float(constants.INACTIVITY_SCORE_BIAS)
    score_recovery: float = float(constants.INACTIVITY_SCORE_RECOVERY_PER_EPOCH)
    penalty_quotient: float = float(constants.INACTIVITY_PENALTY_QUOTIENT)
    ejection_fraction: float = constants.EJECTION_BALANCE_ETH / constants.MAX_EFFECTIVE_BALANCE_ETH
    supermajority: float = constants.SUPERMAJORITY_FRACTION
    initial_stake: float = constants.MAX_EFFECTIVE_BALANCE_ETH

    def __post_init__(self) -> None:
        if self.score_bias <= 0:
            raise ValueError("score_bias must be positive")
        if self.score_recovery < 0:
            raise ValueError("score_recovery must be non-negative")
        if self.penalty_quotient <= 0:
            raise ValueError("penalty_quotient must be positive")
        if not 0.0 < self.ejection_fraction < 1.0:
            raise ValueError("ejection_fraction must lie in (0, 1)")
        if not 0.5 <= self.supermajority < 1.0:
            raise ValueError("supermajority must lie in [0.5, 1)")

    # ------------------------------------------------------------------
    # Stake decay
    # ------------------------------------------------------------------
    @property
    def inactive_decay_coefficient(self) -> float:
        """``c`` such that an always-inactive validator has s(t) = s0 e^{-c t^2}.

        The inactivity score grows as ``score_bias * t``, so the exponent is
        ``score_bias * t^2 / (2 * quotient)``.
        """
        return self.score_bias / (2.0 * self.penalty_quotient)

    @property
    def semi_active_decay_coefficient(self) -> float:
        """Decay coefficient of a validator active every other epoch.

        Its score grows by ``(score_bias - score_recovery)`` every two epochs,
        i.e. on average ``(score_bias - score_recovery)/2`` per epoch.
        """
        rate = (self.score_bias - self.score_recovery) / 2.0
        return max(0.0, rate / (2.0 * self.penalty_quotient))

    def inactive_stake(self, t: float) -> float:
        """Stake of an always-inactive validator at epoch ``t``."""
        return self.initial_stake * math.exp(-self.inactive_decay_coefficient * t * t)

    def semi_active_stake(self, t: float) -> float:
        """Stake of a semi-active validator at epoch ``t``."""
        return self.initial_stake * math.exp(-self.semi_active_decay_coefficient * t * t)

    # ------------------------------------------------------------------
    # Ejection and Safety bound
    # ------------------------------------------------------------------
    def ejection_epoch_inactive(self) -> float:
        """Epoch at which an always-inactive validator reaches the ejection threshold."""
        return math.sqrt(
            math.log(1.0 / self.ejection_fraction) / self.inactive_decay_coefficient
        )

    def ejection_epoch_semi_active(self) -> Optional[float]:
        """Epoch at which a semi-active validator is ejected (None if never)."""
        coefficient = self.semi_active_decay_coefficient
        if coefficient <= 0:
            return None
        return math.sqrt(math.log(1.0 / self.ejection_fraction) / coefficient)

    def honest_threshold_epoch(self, p0: float) -> float:
        """Generalisation of Equation 6: epochs for a branch with honest-active
        proportion ``p0`` to regain the supermajority, capped at ejection."""
        if not 0.0 <= p0 <= 1.0:
            raise ValueError("p0 must lie in [0, 1]")
        cap = self.ejection_epoch_inactive()
        if p0 >= self.supermajority:
            return 0.0
        if p0 <= 0.0:
            return cap
        # p0 / (p0 + (1-p0) e^{-c t^2}) = q  =>  e^{-c t^2} = p0 (1-q) / (q (1-p0))
        q = self.supermajority
        ratio = p0 * (1.0 - q) / (q * (1.0 - p0))
        if ratio >= 1.0:
            return 0.0
        t = math.sqrt(-math.log(ratio) / self.inactive_decay_coefficient)
        return min(t, cap)

    def safety_bound_epochs(self, p0: float = 0.5) -> float:
        """Generalised Section-5.1 bound: conflicting finalization epoch for a fork
        splitting honest validators into ``p0`` / ``1 - p0``."""
        slower = max(self.honest_threshold_epoch(p0), self.honest_threshold_epoch(1.0 - p0))
        return slower + 1.0

    # ------------------------------------------------------------------
    # Byzantine threshold (generalised Equation 13)
    # ------------------------------------------------------------------
    def max_byzantine_proportion(self, p0: float, beta0: float) -> float:
        """Peak Byzantine proportion when waiting for the honest ejection."""
        if not 0.0 <= beta0 < 1.0:
            raise ValueError("beta0 must lie in [0, 1)")
        decay = self.semi_active_stake(self.ejection_epoch_inactive()) / self.initial_stake
        byzantine = beta0 * decay
        denominator = p0 * (1.0 - beta0) + byzantine
        return byzantine / denominator if denominator > 0 else 0.0

    def critical_beta0(self, p0: float = 0.5, threshold: float = 1.0 / 3.0) -> float:
        """Smallest beta0 whose peak proportion reaches ``threshold``."""
        decay = self.semi_active_stake(self.ejection_epoch_inactive()) / self.initial_stake
        numerator = threshold * p0
        denominator = threshold * p0 + decay * (1.0 - threshold)
        return numerator / denominator

    # ------------------------------------------------------------------
    @classmethod
    def ethereum(cls) -> "PenaltyMechanism":
        """The mainnet Ethereum mechanism analysed by the paper."""
        return cls()

    @classmethod
    def with_quotient(cls, quotient: float) -> "PenaltyMechanism":
        """Ethereum's mechanism with a different penalty quotient (leak speed)."""
        return cls(penalty_quotient=quotient)

    @classmethod
    def aggressive(cls) -> "PenaltyMechanism":
        """A much faster leak (quotient 2**20): days instead of weeks."""
        return cls(penalty_quotient=float(2 ** 20))

    @classmethod
    def lenient(cls) -> "PenaltyMechanism":
        """A slower leak (quotient 2**28) with gentler score growth."""
        return cls(penalty_quotient=float(2 ** 28), score_bias=2.0)
