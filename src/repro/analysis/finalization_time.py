"""Time to (conflicting) finalization during the inactivity leak.

Implements the paper's Equations 6 and 9 (closed forms) and the numerical
solution of Equation 10, i.e. the number of epochs after the start of the
inactivity leak at which a branch regains a supermajority of active stake,
for the three settings studied in Section 5:

* honest validators only (Section 5.1, Equation 6),
* Byzantine validators active on both branches — slashable behaviour
  (Section 5.2.1, Equation 9, Table 2),
* Byzantine validators semi-active on both branches — non-slashable
  behaviour (Section 5.2.2, Equation 10 solved numerically, Table 3).

The "conflicting finalization" time of a fork is the time at which the
*slowest* branch finalizes; one extra epoch is needed after the threshold
crossing to finalize the preceding justified checkpoint (the paper's 4685
→ 4686 remark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from scipy import optimize

from repro import constants
from repro.leak.ratios import (
    active_ratio_honest_only,
    active_ratio_with_semi_active_byzantine,
    active_ratio_with_slashing_byzantine,
)


#: The epoch at which honest inactive validators are ejected; beyond this
#: point the branch trivially regains a supermajority (the ratio jumps to 1
#: in Figure 3), so every crossing time is capped at this value.
EJECTION_CAP = float(constants.PAPER_INACTIVE_EJECTION_EPOCH)

#: The FFG supermajority threshold.
SUPERMAJORITY = constants.SUPERMAJORITY_FRACTION


class ByzantineStrategy:
    """Names of the Byzantine strategies whose crossing times we compute."""

    NONE = "honest-only"
    SLASHING = "slashing"
    NON_SLASHING = "non-slashing"


def _validate_inputs(p0: float, beta0: float) -> None:
    if not 0.0 <= p0 <= 1.0:
        raise ValueError(f"p0 must lie in [0, 1], got {p0}")
    if not 0.0 <= beta0 < 1.0:
        raise ValueError(f"beta0 must lie in [0, 1), got {beta0}")


# ----------------------------------------------------------------------
# Equation 6 — honest validators only
# ----------------------------------------------------------------------
def threshold_epoch_honest_only(
    p0: float, ejection_cap: float = EJECTION_CAP
) -> float:
    """Epochs until a branch with honest-active proportion ``p0`` regains 2/3 (Eq. 6).

    ``t = min( sqrt(2**25 [ln(2(1-p0)) - ln(p0)]), 4685 )`` for 0 < p0 < 2/3.
    For ``p0 >= 2/3`` the branch already holds a supermajority, so 0 is
    returned; for ``p0 == 0`` the branch can only recover at the ejection
    cap.
    """
    _validate_inputs(p0, 0.0)
    if p0 >= SUPERMAJORITY:
        return 0.0
    if p0 <= 0.0:
        return ejection_cap
    argument = math.log(2.0 * (1.0 - p0)) - math.log(p0)
    if argument <= 0.0:
        return 0.0
    return min(math.sqrt(2 ** 25 * argument), ejection_cap)


# ----------------------------------------------------------------------
# Equation 9 — Byzantine active on both branches (slashable)
# ----------------------------------------------------------------------
def threshold_epoch_slashing(
    p0: float, beta0: float, ejection_cap: float = EJECTION_CAP
) -> float:
    """Epochs until the branch regains 2/3 with double-voting Byzantine stake (Eq. 9).

    ``t = min( sqrt(2**25 [ln(2(1-p0)) - ln(p0 + beta0/(1-beta0))]), 4685 )``.
    """
    _validate_inputs(p0, beta0)
    effective_active = p0 + beta0 / (1.0 - beta0) if beta0 < 1.0 else float("inf")
    if effective_active >= 2.0 * (1.0 - p0):
        # The log argument is non-positive: the supermajority holds from t=0.
        return 0.0
    argument = math.log(2.0 * (1.0 - p0)) - math.log(effective_active)
    return min(math.sqrt(2 ** 25 * argument), ejection_cap)


# ----------------------------------------------------------------------
# Equation 10 — Byzantine semi-active (non-slashable), numeric solve
# ----------------------------------------------------------------------
def threshold_epoch_non_slashing(
    p0: float,
    beta0: float,
    ejection_cap: float = EJECTION_CAP,
    tolerance: float = 1e-9,
) -> float:
    """Epochs until the branch regains 2/3 with semi-active Byzantine stake.

    Equation 10 has no closed-form crossing time; we find the root of
    ``ratio(t) - 2/3`` with Brent's method on ``[0, ejection_cap]``.  If the
    ratio never reaches 2/3 before the ejection cap, the cap is returned
    (at that point the honest inactive validators are ejected and the ratio
    jumps above 2/3).
    """
    _validate_inputs(p0, beta0)

    def gap(t: float) -> float:
        return active_ratio_with_semi_active_byzantine(t, p0, beta0) - SUPERMAJORITY

    if gap(0.0) >= 0.0:
        return 0.0
    if gap(ejection_cap) < 0.0:
        return ejection_cap
    return float(
        optimize.brentq(gap, 0.0, ejection_cap, xtol=tolerance, maxiter=200)
    )


# ----------------------------------------------------------------------
# Conflicting finalization of the whole fork
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConflictingFinalization:
    """Summary of a conflicting-finalization computation for one fork."""

    strategy: str
    p0: float
    beta0: float
    #: Threshold-crossing epoch of the branch with honest proportion p0.
    branch_1_epoch: float
    #: Threshold-crossing epoch of the branch with honest proportion 1-p0.
    branch_2_epoch: float
    #: Epoch at which the slowest branch crosses the threshold.
    threshold_epoch: float
    #: Epoch of conflicting finalization (threshold + 1, the extra epoch
    #: needed to finalize the preceding justified checkpoint).
    finalization_epoch: float


def _threshold_for(strategy: str, p0: float, beta0: float, ejection_cap: float) -> float:
    if strategy == ByzantineStrategy.NONE:
        return threshold_epoch_honest_only(p0, ejection_cap)
    if strategy == ByzantineStrategy.SLASHING:
        return threshold_epoch_slashing(p0, beta0, ejection_cap)
    if strategy == ByzantineStrategy.NON_SLASHING:
        return threshold_epoch_non_slashing(p0, beta0, ejection_cap)
    raise ValueError(f"unknown Byzantine strategy {strategy!r}")


def conflicting_finalization_time(
    strategy: str,
    p0: float = 0.5,
    beta0: float = 0.0,
    ejection_cap: float = EJECTION_CAP,
) -> ConflictingFinalization:
    """Epochs until both branches of the fork finalize (Safety is lost).

    The fork splits honest validators into proportions ``p0`` and ``1-p0``;
    the Byzantine strategy determines how the adversary's stake counts on
    each branch.  Conflicting finalization is reached when the *slower*
    branch finalizes, one epoch after its threshold crossing.
    """
    if strategy == ByzantineStrategy.NONE and beta0 != 0.0:
        raise ValueError("the honest-only strategy requires beta0 == 0")
    branch_1 = _threshold_for(strategy, p0, beta0, ejection_cap)
    branch_2 = _threshold_for(strategy, 1.0 - p0, beta0, ejection_cap)
    threshold = max(branch_1, branch_2)
    return ConflictingFinalization(
        strategy=strategy,
        p0=p0,
        beta0=beta0,
        branch_1_epoch=branch_1,
        branch_2_epoch=branch_2,
        threshold_epoch=threshold,
        finalization_epoch=threshold + 1.0,
    )


def epochs_to_conflicting_finalization(
    strategy: str,
    p0: float = 0.5,
    beta0: float = 0.0,
    ejection_cap: float = EJECTION_CAP,
) -> int:
    """The integer epoch count reported in Tables 2 and 3 (threshold epoch, rounded up)."""
    result = conflicting_finalization_time(strategy, p0, beta0, ejection_cap)
    return int(math.ceil(result.threshold_epoch - 1e-9))


def speedup_over_honest_baseline(
    strategy: str, beta0: float, p0: float = 0.5, ejection_cap: float = EJECTION_CAP
) -> float:
    """How much faster Safety is broken compared to the honest-only baseline.

    The paper quotes "approximately ten times faster" for the slashing
    strategy at beta0 = 0.33 and "approximately eight times faster" for the
    non-slashable strategy.
    """
    baseline = conflicting_finalization_time(
        ByzantineStrategy.NONE, p0, 0.0, ejection_cap
    ).threshold_epoch
    attacked = conflicting_finalization_time(strategy, p0, beta0, ejection_cap).threshold_epoch
    if attacked <= 0.0:
        return float("inf")
    return baseline / attacked
