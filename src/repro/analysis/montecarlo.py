"""Monte-Carlo simulation of the probabilistic bouncing attack.

The closed forms of Section 5.3 rest on two approximations: the
inactivity-score random walk is replaced by a Gaussian (central limit
theorem) and the score floor at zero is ignored.  This module simulates the
attack *without* those approximations: every honest validator is tracked
individually through the discrete protocol rules (Equations 1–2 with the
floor, the ejection at 16.75 ETH, the 32-ETH cap), the branch assignment is
re-drawn every epoch with probability ``p0``, the Byzantine validators
follow the semi-active alternation, and the attack itself stops as soon as
no Byzantine proposer lands in the first ``j`` slots of an epoch.

It provides the empirical counterparts of Figures 9 and 10 plus the
distribution of the attack's stopping time, and is used by the validation
benchmarks to quantify the quality of the paper's approximations.

The per-epoch arithmetic is delegated to the shared stake-dynamics kernel
(:mod:`repro.core.backend`) through a
:class:`~repro.core.stake_engine.BatchedStakeEngine`: whole *groups* of
seeded trial chunks are stacked into one ``(trials, 2, validators + 1)``
batch so a single kernel call advances thousands of trials on both
branches each epoch.  RNG streams stay per-chunk — each chunk draws from
its own spawned generator in a fixed order — so the results are
bit-identical for a given ``(seed, chunk_size)`` whatever ``jobs`` *and*
whatever ``batch`` (the kernel-batch width is a pure throughput knob; the
regression tests assert both invariances).  Groups are dispatched through
the seeded parallel runner (:mod:`repro.core.trials`), which multiplies
the batched throughput across cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import constants
from repro.core.backend import StakeBackend, StakeRules, get_backend
from repro.core.stake_engine import BatchedStakeEngine
from repro.core.trials import DEFAULT_CHUNK_SIZE, TrialChunk, run_chunk_groups
from repro.spec.config import SpecConfig

#: Target element count per batched state array: the kernel-batch width is
#: capped so one ``(batch, 2, n + 1)`` matrix stays cache-friendly even at
#: mainnet validator counts (large batches of wide rows thrash the cache).
_TARGET_BATCH_ELEMENTS = 262_144


@dataclass
class BouncingTrialResult:
    """Outcome of one simulated bouncing-attack trial."""

    #: Epoch at which the attack stopped (no Byzantine proposer in the window),
    #: or the horizon if it survived the whole simulation.
    stop_epoch: int
    #: Whether the attack was still alive at the horizon.
    survived: bool
    #: Per-recorded-epoch Byzantine stake proportion on branch A.
    byzantine_proportion_branch_a: Dict[int, float]
    #: Per-recorded-epoch Byzantine stake proportion on branch B.
    byzantine_proportion_branch_b: Dict[int, float]
    #: Optional per-recorded-epoch ``(2, n_honest + 1)`` stake snapshots
    #: (honest columns then the Byzantine aggregate, per branch), populated
    #: when the run asked for ``record_stakes`` — the trajectory payload the
    #: batched-vs-per-trial identity tests compare byte for byte.
    stake_snapshots: Optional[Dict[int, np.ndarray]] = None

    def exceeded_threshold_at(
        self, epoch: int, threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD
    ) -> bool:
        """True if beta exceeded ``threshold`` on either branch at ``epoch``."""
        a = self.byzantine_proportion_branch_a.get(epoch)
        b = self.byzantine_proportion_branch_b.get(epoch)
        return (a is not None and a > threshold) or (b is not None and b > threshold)


@dataclass
class BouncingMonteCarloResult:
    """Aggregate of many bouncing-attack trials."""

    beta0: float
    p0: float
    horizon: int
    record_epochs: Sequence[int]
    trials: List[BouncingTrialResult] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def exceed_probability(
        self, epoch: int, threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD
    ) -> float:
        """Empirical P[beta > threshold on either branch] at ``epoch``.

        Conditional on nothing: trials where the attack already stopped do
        not count as exceeding (the leak ends once finalization resumes).
        """
        if not self.trials:
            return 0.0
        hits = sum(
            1
            for trial in self.trials
            if trial.stop_epoch >= epoch and trial.exceeded_threshold_at(epoch, threshold)
        )
        return hits / len(self.trials)

    def conditional_exceed_probability(
        self, epoch: int, threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD
    ) -> float:
        """Empirical P[beta > threshold | the attack is still running at ``epoch``]."""
        alive = [trial for trial in self.trials if trial.stop_epoch >= epoch]
        if not alive:
            return 0.0
        hits = sum(1 for trial in alive if trial.exceeded_threshold_at(epoch, threshold))
        return hits / len(alive)

    def exceed_probability_curve(
        self, threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD
    ) -> Dict[int, float]:
        """The empirical exceed probability at every recorded epoch.

        This is the Figure-10 curve: epoch -> P[beta > threshold on either
        branch], evaluated at each of the run's ``record_epochs``.
        """
        return {
            int(epoch): self.exceed_probability(int(epoch), threshold)
            for epoch in self.record_epochs
        }

    def survival_probability(self, epoch: int) -> float:
        """Empirical P[attack still running at ``epoch``]."""
        if not self.trials:
            return 0.0
        return sum(1 for trial in self.trials if trial.stop_epoch >= epoch) / len(self.trials)

    def mean_stop_epoch(self) -> float:
        """Average epoch at which the attack stopped."""
        if not self.trials:
            return 0.0
        return float(np.mean([trial.stop_epoch for trial in self.trials]))


def _simulate_group(
    group: Sequence[TrialChunk],
    simulator: "BouncingMonteCarlo",
    horizon: int,
    record_epochs: Sequence[int],
    record_stakes: bool,
) -> List[BouncingTrialResult]:
    """Module-level group worker (picklable for the process pool)."""
    return simulator._run_group(group, horizon, record_epochs, record_stakes)


class BouncingMonteCarlo:
    """Simulates the bouncing attack with the discrete protocol rules.

    One chunk of trials is simulated as a single
    ``(trials, 2 branches, n_honest + 1)`` batch — honest validators in the
    first ``n_honest`` columns, the (identical) Byzantine validators
    aggregated in the last — so one vectorized kernel call advances every
    trial of the chunk on both branches each epoch.
    """

    def __init__(
        self,
        beta0: float,
        p0: float = 0.5,
        n_honest: int = 1000,
        config: Optional[SpecConfig] = None,
        window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS,
        enforce_stopping: bool = True,
        seed: int = 0,
        backend: Union[str, StakeBackend] = "numpy",
    ) -> None:
        if not 0.0 <= beta0 < 1.0:
            raise ValueError("beta0 must lie in [0, 1)")
        if not 0.0 < p0 < 1.0:
            raise ValueError("p0 must lie strictly between 0 and 1")
        if n_honest <= 0:
            raise ValueError("n_honest must be positive")
        self.beta0 = beta0
        self.p0 = p0
        self.n_honest = n_honest
        self.config = config or SpecConfig.mainnet()
        self.window_slots = window_slots
        self.enforce_stopping = enforce_stopping
        self.seed = seed
        self.backend = get_backend(backend)

    # ------------------------------------------------------------------
    def _run_group(
        self,
        group: Sequence[TrialChunk],
        horizon: int,
        record_epochs: Sequence[int],
        record_stakes: bool = False,
    ) -> List[BouncingTrialResult]:
        cfg = self.config
        # Private kernel instance: nothing here reads the penalty totals, so
        # skip their per-epoch reductions without disturbing self.backend.
        kernel = self.backend.clone()
        kernel.track_penalty_totals = False
        n = self.n_honest
        n_trials = sum(chunk.size for chunk in group)

        # One generator — and one fixed per-epoch draw order — per seeded
        # chunk: stacking chunks into a wider kernel batch must not move a
        # single draw between streams, or batched results would stop being
        # bit-identical to per-chunk (and per-trial) runs.
        rngs = [chunk.rng() for chunk in group]
        bounds: List[tuple] = []
        offset = 0
        for chunk in group:
            bounds.append((offset, offset + chunk.size))
            offset += chunk.size

        # Column layout: honest validators 0..n-1, Byzantine aggregate at n.
        # Honest validators carry (1 - beta0) of the weight, Byzantine beta0.
        weights = np.empty(n + 1)
        weights[:n] = (1.0 - self.beta0) / n
        weights[n] = self.beta0

        # Both branches share one (n_trials, 2, n + 1) engine batch — axis 1
        # is the branch (0 = A, 1 = B) — so each epoch is one kernel call
        # for every trial of every chunk in the group.
        engine = BatchedStakeEngine(
            np.full((n_trials, 2, n + 1), cfg.max_effective_balance),
            weights=weights,
            config=cfg,
            backend=kernel,
        )
        active = np.empty((n_trials, 2, n + 1), dtype=bool)
        on_a = np.empty((n_trials, n))
        stop_draws = np.empty(n_trials)

        alive = np.ones(n_trials, dtype=bool)
        stop_epoch = np.full(n_trials, horizon, dtype=int)
        #: epoch -> branch -> per-trial Byzantine proportion.
        recorded: Dict[int, Dict[str, np.ndarray]] = {}
        #: epoch -> (trials, 2, n + 1) stake snapshot (when requested).
        recorded_stakes: Dict[int, np.ndarray] = {}
        record_set = set(int(e) for e in record_epochs)

        def branch_beta(branch_axis: int) -> np.ndarray:
            effective = np.where(
                engine.ejected[:, branch_axis, :],
                0.0,
                engine.stakes[:, branch_axis, :],
            )
            totals = np.sum(effective * weights, axis=-1)
            byz = effective[:, n] * weights[n]
            return np.divide(byz, totals, out=np.zeros(n_trials), where=totals > 0)

        for epoch in range(1, horizon + 1):
            # Attack continuation: a Byzantine proposer must land in one of
            # the first `window_slots` slots of the epoch (proposers drawn
            # by stake).  The Byzantine stake freezes at its ejection value
            # (the share it could still propose with), honest ejected stake
            # counts as zero — matching the per-trial reference semantics.
            # Draw order per chunk and per epoch is fixed: the stop draw
            # (when stopping is enforced) then the branch assignments.
            if self.enforce_stopping:
                for rng, (lo, hi) in zip(rngs, bounds):
                    stop_draws[lo:hi] = rng.random(hi - lo)
                honest_total = np.sum(
                    np.where(
                        engine.ejected[:, 0, :n], 0.0, engine.stakes[:, 0, :n]
                    )
                    * weights[:n],
                    axis=-1,
                )
                byzantine_total = weights[n] * engine.stakes[:, 0, n]
                byzantine_share = byzantine_total / (byzantine_total + honest_total)
                continue_probability = (
                    1.0 - (1.0 - byzantine_share) ** self.window_slots
                )
                stopped_now = alive & (stop_draws > continue_probability)
                stop_epoch[stopped_now] = epoch - 1
                alive &= ~stopped_now
                if not alive.any():
                    break

            # Branch assignment of honest validators this epoch.
            for rng, (lo, hi) in zip(rngs, bounds):
                on_a[lo:hi] = rng.random((hi - lo, n))
            on_a_mask = on_a < self.p0
            byzantine_on_a = epoch % 2 == 0  # semi-active alternation
            active[:, 0, :n] = on_a_mask
            np.logical_not(on_a_mask, out=active[:, 1, :n])
            active[:, 0, n] = byzantine_on_a
            active[:, 1, n] = not byzantine_on_a

            engine.step(active, in_leak=True)

            if epoch in record_set:
                recorded[epoch] = {"A": branch_beta(0), "B": branch_beta(1)}
                if record_stakes:
                    recorded_stakes[epoch] = engine.stakes.copy()

        results: List[BouncingTrialResult] = []
        for trial in range(n_trials):
            record_a = {
                epoch: float(betas["A"][trial])
                for epoch, betas in recorded.items()
                if stop_epoch[trial] >= epoch
            }
            record_b = {
                epoch: float(betas["B"][trial])
                for epoch, betas in recorded.items()
                if stop_epoch[trial] >= epoch
            }
            snapshots = None
            if record_stakes:
                snapshots = {
                    epoch: stakes_at[trial].copy()
                    for epoch, stakes_at in recorded_stakes.items()
                    if stop_epoch[trial] >= epoch
                }
            results.append(
                BouncingTrialResult(
                    stop_epoch=int(stop_epoch[trial]),
                    survived=bool(alive[trial]),
                    byzantine_proportion_branch_a=record_a,
                    byzantine_proportion_branch_b=record_b,
                    stake_snapshots=snapshots,
                )
            )
        return results

    # ------------------------------------------------------------------
    def default_batch(self, n_trials: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
        """Kernel-batch width used when ``run`` is not given one explicitly.

        Wide enough to amortize per-kernel-call overhead across trials, but
        capped so one ``(batch, 2, n_honest + 1)`` state matrix stays within
        a cache-friendly element budget — at mainnet validator counts a huge
        batch is *slower* than a moderate one.
        """
        cap = max(1, _TARGET_BATCH_ELEMENTS // (2 * (self.n_honest + 1)))
        return max(chunk_size, min(cap, n_trials))

    def run(
        self,
        n_trials: int,
        horizon: int,
        record_epochs: Optional[Sequence[int]] = None,
        jobs: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        batch: Optional[int] = None,
        record_stakes: bool = False,
    ) -> BouncingMonteCarloResult:
        """Run ``n_trials`` independent attack trials up to ``horizon`` epochs.

        ``jobs`` fans groups of trial chunks out to a process pool
        (``None``/1 = serial, <=0 = all cores) and ``batch`` sets how many
        trials are stacked into one kernel batch (``None`` = a
        cache-budgeted default; ``batch=1`` with ``chunk_size=1`` is the
        per-trial reference path the benchmarks compare against).  The
        chunk plan and per-chunk seeds depend only on ``(n_trials,
        chunk_size, seed)``, so the result is the same whatever the
        parallelism *and* whatever the kernel-batch width.

        ``record_stakes`` attaches the full per-branch stake vector at each
        recorded epoch to every trial — the byte-comparable trajectory used
        by the batching regression tests.
        """
        if n_trials <= 0:
            raise ValueError("n_trials must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        epochs = (
            sorted(set(int(e) for e in record_epochs))
            if record_epochs is not None
            else [horizon]
        )
        trials = run_chunk_groups(
            _simulate_group,
            n_trials,
            seed=self.seed,
            jobs=jobs,
            chunk_size=chunk_size,
            batch=batch if batch is not None else self.default_batch(n_trials, chunk_size),
            worker_args=(self, horizon, epochs, record_stakes),
        )
        return BouncingMonteCarloResult(
            beta0=self.beta0,
            p0=self.p0,
            horizon=horizon,
            record_epochs=epochs,
            trials=trials,
        )

    # ------------------------------------------------------------------
    def honest_stake_sample(
        self, epoch: int, n_samples: int = 5000, seed: Optional[int] = None
    ) -> np.ndarray:
        """Sample honest stakes at ``epoch`` (the empirical Figure-9 histogram).

        Runs the per-validator dynamics with no attack-stopping so that the
        sample reflects the conditional law used by the paper's Figure 9.
        Ejected validators report a stake of zero.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        rules = StakeRules.from_config(self.config)
        kernel = self.backend
        stakes = np.full(n_samples, self.config.max_effective_balance)
        scores = np.zeros(n_samples)
        ejected = np.zeros(n_samples, dtype=bool)
        for _ in range(epoch):
            active = rng.random(n_samples) < self.p0
            outcome = kernel.epoch_update(
                stakes, scores, active, ejected, rules, in_leak=True
            )
            stakes = np.where(outcome.newly_ejected, 0.0, outcome.stakes)
            scores = outcome.scores
            ejected = outcome.ejected
        return stakes
