"""Monte-Carlo simulation of the probabilistic bouncing attack.

The closed forms of Section 5.3 rest on two approximations: the
inactivity-score random walk is replaced by a Gaussian (central limit
theorem) and the score floor at zero is ignored.  This module simulates the
attack *without* those approximations: every honest validator is tracked
individually through the discrete protocol rules (Equations 1–2 with the
floor, the ejection at 16.75 ETH, the 32-ETH cap), the branch assignment is
re-drawn every epoch with probability ``p0``, the Byzantine validators
follow the semi-active alternation, and the attack itself stops as soon as
no Byzantine proposer lands in the first ``j`` slots of an epoch.

It provides the empirical counterparts of Figures 9 and 10 plus the
distribution of the attack's stopping time, and is used by the validation
benchmarks to quantify the quality of the paper's approximations.

The per-epoch arithmetic is delegated to the shared stake-dynamics kernel
(:mod:`repro.core.backend`), and whole *chunks* of trials are batched into
``(trials, validators)`` matrices so one kernel call advances every trial
of a chunk at once.  Chunks are dispatched through the seeded parallel
runner (:mod:`repro.core.trials`): results are bit-identical for a given
seed whatever ``jobs`` is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import constants
from repro.core.backend import StakeBackend, StakeRules, get_backend
from repro.core.trials import DEFAULT_CHUNK_SIZE, TrialChunk, run_chunked
from repro.spec.config import SpecConfig


@dataclass
class BouncingTrialResult:
    """Outcome of one simulated bouncing-attack trial."""

    #: Epoch at which the attack stopped (no Byzantine proposer in the window),
    #: or the horizon if it survived the whole simulation.
    stop_epoch: int
    #: Whether the attack was still alive at the horizon.
    survived: bool
    #: Per-recorded-epoch Byzantine stake proportion on branch A.
    byzantine_proportion_branch_a: Dict[int, float]
    #: Per-recorded-epoch Byzantine stake proportion on branch B.
    byzantine_proportion_branch_b: Dict[int, float]

    def exceeded_threshold_at(
        self, epoch: int, threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD
    ) -> bool:
        """True if beta exceeded ``threshold`` on either branch at ``epoch``."""
        a = self.byzantine_proportion_branch_a.get(epoch)
        b = self.byzantine_proportion_branch_b.get(epoch)
        return (a is not None and a > threshold) or (b is not None and b > threshold)


@dataclass
class BouncingMonteCarloResult:
    """Aggregate of many bouncing-attack trials."""

    beta0: float
    p0: float
    horizon: int
    record_epochs: Sequence[int]
    trials: List[BouncingTrialResult] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def exceed_probability(
        self, epoch: int, threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD
    ) -> float:
        """Empirical P[beta > threshold on either branch] at ``epoch``.

        Conditional on nothing: trials where the attack already stopped do
        not count as exceeding (the leak ends once finalization resumes).
        """
        if not self.trials:
            return 0.0
        hits = sum(
            1
            for trial in self.trials
            if trial.stop_epoch >= epoch and trial.exceeded_threshold_at(epoch, threshold)
        )
        return hits / len(self.trials)

    def conditional_exceed_probability(
        self, epoch: int, threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD
    ) -> float:
        """Empirical P[beta > threshold | the attack is still running at ``epoch``]."""
        alive = [trial for trial in self.trials if trial.stop_epoch >= epoch]
        if not alive:
            return 0.0
        hits = sum(1 for trial in alive if trial.exceeded_threshold_at(epoch, threshold))
        return hits / len(alive)

    def exceed_probability_curve(
        self, threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD
    ) -> Dict[int, float]:
        """The empirical exceed probability at every recorded epoch.

        This is the Figure-10 curve: epoch -> P[beta > threshold on either
        branch], evaluated at each of the run's ``record_epochs``.
        """
        return {
            int(epoch): self.exceed_probability(int(epoch), threshold)
            for epoch in self.record_epochs
        }

    def survival_probability(self, epoch: int) -> float:
        """Empirical P[attack still running at ``epoch``]."""
        if not self.trials:
            return 0.0
        return sum(1 for trial in self.trials if trial.stop_epoch >= epoch) / len(self.trials)

    def mean_stop_epoch(self) -> float:
        """Average epoch at which the attack stopped."""
        if not self.trials:
            return 0.0
        return float(np.mean([trial.stop_epoch for trial in self.trials]))


def _simulate_chunk(
    chunk: TrialChunk,
    simulator: "BouncingMonteCarlo",
    horizon: int,
    record_epochs: Sequence[int],
) -> List[BouncingTrialResult]:
    """Module-level chunk worker (picklable for the process pool)."""
    return simulator._run_chunk(chunk.rng(), chunk.size, horizon, record_epochs)


class BouncingMonteCarlo:
    """Simulates the bouncing attack with the discrete protocol rules.

    One chunk of trials is simulated as a single
    ``(trials, 2 branches, n_honest + 1)`` batch — honest validators in the
    first ``n_honest`` columns, the (identical) Byzantine validators
    aggregated in the last — so one vectorized kernel call advances every
    trial of the chunk on both branches each epoch.
    """

    def __init__(
        self,
        beta0: float,
        p0: float = 0.5,
        n_honest: int = 1000,
        config: Optional[SpecConfig] = None,
        window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS,
        enforce_stopping: bool = True,
        seed: int = 0,
        backend: Union[str, StakeBackend] = "numpy",
    ) -> None:
        if not 0.0 <= beta0 < 1.0:
            raise ValueError("beta0 must lie in [0, 1)")
        if not 0.0 < p0 < 1.0:
            raise ValueError("p0 must lie strictly between 0 and 1")
        if n_honest <= 0:
            raise ValueError("n_honest must be positive")
        self.beta0 = beta0
        self.p0 = p0
        self.n_honest = n_honest
        self.config = config or SpecConfig.mainnet()
        self.window_slots = window_slots
        self.enforce_stopping = enforce_stopping
        self.seed = seed
        self.backend = get_backend(backend)

    # ------------------------------------------------------------------
    def _run_chunk(
        self,
        rng: np.random.Generator,
        n_trials: int,
        horizon: int,
        record_epochs: Sequence[int],
    ) -> List[BouncingTrialResult]:
        cfg = self.config
        rules = StakeRules.from_config(cfg)
        # Private kernel instance: nothing here reads the penalty totals, so
        # skip their per-epoch reductions without disturbing self.backend.
        kernel = self.backend.clone()
        kernel.track_penalty_totals = False
        n = self.n_honest
        s0 = cfg.max_effective_balance

        # Column layout: honest validators 0..n-1, Byzantine aggregate at n.
        # Honest validators carry (1 - beta0) of the weight, Byzantine beta0.
        weights = np.empty(n + 1)
        weights[:n] = (1.0 - self.beta0) / n
        weights[n] = self.beta0

        # Both branches share one (n_trials, 2, n + 1) batch — axis 1 is the
        # branch (0 = A, 1 = B) — so each epoch is a single kernel call.
        stakes = np.full((n_trials, 2, n + 1), s0)
        scores = np.zeros((n_trials, 2, n + 1))
        ejected = np.zeros((n_trials, 2, n + 1), dtype=bool)
        active = np.empty((n_trials, 2, n + 1), dtype=bool)

        alive = np.ones(n_trials, dtype=bool)
        stop_epoch = np.full(n_trials, horizon, dtype=int)
        #: epoch -> branch -> per-trial Byzantine proportion.
        recorded: Dict[int, Dict[str, np.ndarray]] = {}
        record_set = set(int(e) for e in record_epochs)

        def branch_beta(branch_axis: int) -> np.ndarray:
            effective = np.where(
                ejected[:, branch_axis, :], 0.0, stakes[:, branch_axis, :]
            )
            totals = effective @ weights
            byz = effective[:, n] * weights[n]
            return np.divide(byz, totals, out=np.zeros(n_trials), where=totals > 0)

        for epoch in range(1, horizon + 1):
            # Attack continuation: a Byzantine proposer must land in one of
            # the first `window_slots` slots of the epoch (proposers drawn
            # by stake).  The Byzantine stake freezes at its ejection value
            # (the share it could still propose with), honest ejected stake
            # counts as zero — matching the per-trial reference semantics.
            if self.enforce_stopping:
                honest_total = (
                    np.where(ejected[:, 0, :n], 0.0, stakes[:, 0, :n]) @ weights[:n]
                )
                byzantine_total = weights[n] * stakes[:, 0, n]
                byzantine_share = byzantine_total / (byzantine_total + honest_total)
                continue_probability = (
                    1.0 - (1.0 - byzantine_share) ** self.window_slots
                )
                stopped_now = alive & (rng.random(n_trials) > continue_probability)
                stop_epoch[stopped_now] = epoch - 1
                alive &= ~stopped_now
                if not alive.any():
                    break

            # Branch assignment of honest validators this epoch.
            on_a = rng.random((n_trials, n)) < self.p0
            byzantine_on_a = epoch % 2 == 0  # semi-active alternation
            active[:, 0, :n] = on_a
            np.logical_not(on_a, out=active[:, 1, :n])
            active[:, 0, n] = byzantine_on_a
            active[:, 1, n] = not byzantine_on_a

            outcome = kernel.epoch_update(
                stakes, scores, active, ejected, rules, in_leak=True
            )
            stakes, scores, ejected = outcome.stakes, outcome.scores, outcome.ejected

            if epoch in record_set:
                recorded[epoch] = {"A": branch_beta(0), "B": branch_beta(1)}

        results: List[BouncingTrialResult] = []
        for trial in range(n_trials):
            record_a = {
                epoch: float(betas["A"][trial])
                for epoch, betas in recorded.items()
                if stop_epoch[trial] >= epoch
            }
            record_b = {
                epoch: float(betas["B"][trial])
                for epoch, betas in recorded.items()
                if stop_epoch[trial] >= epoch
            }
            results.append(
                BouncingTrialResult(
                    stop_epoch=int(stop_epoch[trial]),
                    survived=bool(alive[trial]),
                    byzantine_proportion_branch_a=record_a,
                    byzantine_proportion_branch_b=record_b,
                )
            )
        return results

    # ------------------------------------------------------------------
    def run(
        self,
        n_trials: int,
        horizon: int,
        record_epochs: Optional[Sequence[int]] = None,
        jobs: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> BouncingMonteCarloResult:
        """Run ``n_trials`` independent attack trials up to ``horizon`` epochs.

        ``jobs`` fans the trial chunks out to a process pool (``None``/1 =
        serial, <=0 = all cores); the chunk plan and per-chunk seeds depend
        only on ``(n_trials, chunk_size, seed)``, so the result is the same
        whatever the parallelism.
        """
        if n_trials <= 0:
            raise ValueError("n_trials must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        epochs = (
            sorted(set(int(e) for e in record_epochs))
            if record_epochs is not None
            else [horizon]
        )
        trials = run_chunked(
            _simulate_chunk,
            n_trials,
            seed=self.seed,
            jobs=jobs,
            chunk_size=chunk_size,
            worker_args=(self, horizon, epochs),
        )
        return BouncingMonteCarloResult(
            beta0=self.beta0,
            p0=self.p0,
            horizon=horizon,
            record_epochs=epochs,
            trials=trials,
        )

    # ------------------------------------------------------------------
    def honest_stake_sample(
        self, epoch: int, n_samples: int = 5000, seed: Optional[int] = None
    ) -> np.ndarray:
        """Sample honest stakes at ``epoch`` (the empirical Figure-9 histogram).

        Runs the per-validator dynamics with no attack-stopping so that the
        sample reflects the conditional law used by the paper's Figure 9.
        Ejected validators report a stake of zero.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        rules = StakeRules.from_config(self.config)
        kernel = self.backend
        stakes = np.full(n_samples, self.config.max_effective_balance)
        scores = np.zeros(n_samples)
        ejected = np.zeros(n_samples, dtype=bool)
        for _ in range(epoch):
            active = rng.random(n_samples) < self.p0
            outcome = kernel.epoch_update(
                stakes, scores, active, ejected, rules, in_leak=True
            )
            stakes = np.where(outcome.newly_ejected, 0.0, outcome.stakes)
            scores = outcome.scores
            ejected = outcome.ejected
        return stakes
