"""Monte-Carlo simulation of the probabilistic bouncing attack.

The closed forms of Section 5.3 rest on two approximations: the
inactivity-score random walk is replaced by a Gaussian (central limit
theorem) and the score floor at zero is ignored.  This module simulates the
attack *without* those approximations: every honest validator is tracked
individually through the discrete protocol rules (Equations 1–2 with the
floor, the ejection at 16.75 ETH, the 32-ETH cap), the branch assignment is
re-drawn every epoch with probability ``p0``, the Byzantine validators
follow the semi-active alternation, and the attack itself stops as soon as
no Byzantine proposer lands in the first ``j`` slots of an epoch.

It provides the empirical counterparts of Figures 9 and 10 plus the
distribution of the attack's stopping time, and is used by the validation
benchmarks to quantify the quality of the paper's approximations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.spec.config import SpecConfig


@dataclass
class BouncingTrialResult:
    """Outcome of one simulated bouncing-attack trial."""

    #: Epoch at which the attack stopped (no Byzantine proposer in the window),
    #: or the horizon if it survived the whole simulation.
    stop_epoch: int
    #: Whether the attack was still alive at the horizon.
    survived: bool
    #: Per-recorded-epoch Byzantine stake proportion on branch A.
    byzantine_proportion_branch_a: Dict[int, float]
    #: Per-recorded-epoch Byzantine stake proportion on branch B.
    byzantine_proportion_branch_b: Dict[int, float]

    def exceeded_threshold_at(self, epoch: int, threshold: float = 1.0 / 3.0) -> bool:
        """True if beta exceeded ``threshold`` on either branch at ``epoch``."""
        a = self.byzantine_proportion_branch_a.get(epoch)
        b = self.byzantine_proportion_branch_b.get(epoch)
        return (a is not None and a > threshold) or (b is not None and b > threshold)


@dataclass
class BouncingMonteCarloResult:
    """Aggregate of many bouncing-attack trials."""

    beta0: float
    p0: float
    horizon: int
    record_epochs: Sequence[int]
    trials: List[BouncingTrialResult] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def exceed_probability(self, epoch: int, threshold: float = 1.0 / 3.0) -> float:
        """Empirical P[beta > threshold on either branch] at ``epoch``.

        Conditional on nothing: trials where the attack already stopped do
        not count as exceeding (the leak ends once finalization resumes).
        """
        if not self.trials:
            return 0.0
        hits = sum(
            1
            for trial in self.trials
            if trial.stop_epoch >= epoch and trial.exceeded_threshold_at(epoch, threshold)
        )
        return hits / len(self.trials)

    def conditional_exceed_probability(
        self, epoch: int, threshold: float = 1.0 / 3.0
    ) -> float:
        """Empirical P[beta > threshold | the attack is still running at ``epoch``]."""
        alive = [trial for trial in self.trials if trial.stop_epoch >= epoch]
        if not alive:
            return 0.0
        hits = sum(1 for trial in alive if trial.exceeded_threshold_at(epoch, threshold))
        return hits / len(alive)

    def survival_probability(self, epoch: int) -> float:
        """Empirical P[attack still running at ``epoch``]."""
        if not self.trials:
            return 0.0
        return sum(1 for trial in self.trials if trial.stop_epoch >= epoch) / len(self.trials)

    def mean_stop_epoch(self) -> float:
        """Average epoch at which the attack stopped."""
        if not self.trials:
            return 0.0
        return float(np.mean([trial.stop_epoch for trial in self.trials]))


class BouncingMonteCarlo:
    """Simulates the bouncing attack with the discrete protocol rules."""

    def __init__(
        self,
        beta0: float,
        p0: float = 0.5,
        n_honest: int = 1000,
        config: Optional[SpecConfig] = None,
        window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS,
        enforce_stopping: bool = True,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= beta0 < 1.0:
            raise ValueError("beta0 must lie in [0, 1)")
        if not 0.0 < p0 < 1.0:
            raise ValueError("p0 must lie strictly between 0 and 1")
        if n_honest <= 0:
            raise ValueError("n_honest must be positive")
        self.beta0 = beta0
        self.p0 = p0
        self.n_honest = n_honest
        self.config = config or SpecConfig.mainnet()
        self.window_slots = window_slots
        self.enforce_stopping = enforce_stopping
        self.seed = seed

    # ------------------------------------------------------------------
    def _run_trial(self, rng: np.random.Generator, horizon: int, record_epochs: Sequence[int]) -> BouncingTrialResult:
        cfg = self.config
        quotient = float(cfg.inactivity_penalty_quotient)
        ejection = cfg.ejection_balance
        s0 = cfg.max_effective_balance

        # Honest validators: per-branch stakes and scores.
        honest_stake = {
            "A": np.full(self.n_honest, s0),
            "B": np.full(self.n_honest, s0),
        }
        honest_score = {
            "A": np.zeros(self.n_honest),
            "B": np.zeros(self.n_honest),
        }
        honest_ejected = {
            "A": np.zeros(self.n_honest, dtype=bool),
            "B": np.zeros(self.n_honest, dtype=bool),
        }
        # Byzantine validators are identical: a single scalar per branch.
        byzantine_stake = {"A": s0, "B": s0}
        byzantine_score = {"A": 0.0, "B": 0.0}
        byzantine_ejected = {"A": False, "B": False}

        # Total weights: honest validators carry (1 - beta0), Byzantine beta0.
        honest_weight = (1.0 - self.beta0) / self.n_honest
        byzantine_weight = self.beta0

        record: Dict[str, Dict[int, float]] = {"A": {}, "B": {}}
        stop_epoch = horizon
        survived = True

        for epoch in range(1, horizon + 1):
            # Attack continuation: a Byzantine proposer must land in one of the
            # first `window_slots` slots of the epoch (proposers drawn by stake).
            if self.enforce_stopping:
                byzantine_share = byzantine_weight * byzantine_stake["A"] / (
                    byzantine_weight * byzantine_stake["A"]
                    + honest_weight * float(np.sum(np.where(honest_ejected["A"], 0.0, honest_stake["A"])))
                )
                continue_probability = 1.0 - (1.0 - byzantine_share) ** self.window_slots
                if rng.random() > continue_probability:
                    stop_epoch = epoch - 1
                    survived = False
                    break

            # Branch assignment of honest validators this epoch.
            on_a = rng.random(self.n_honest) < self.p0
            byzantine_on_a = epoch % 2 == 0  # semi-active alternation

            for branch, honest_active in (("A", on_a), ("B", ~on_a)):
                # Penalties from the carried-over scores (Equation 2).
                stakes = honest_stake[branch]
                scores = honest_score[branch]
                ejected = honest_ejected[branch]
                penalties = scores * stakes / quotient
                stakes = np.where(ejected, stakes, np.maximum(0.0, stakes - penalties))
                # Score update (Equation 1).
                scores = np.where(
                    honest_active,
                    np.maximum(0.0, scores - cfg.inactivity_score_recovery),
                    scores + cfg.inactivity_score_bias,
                )
                newly_ejected = (~ejected) & (stakes <= ejection)
                ejected = ejected | newly_ejected
                honest_stake[branch] = stakes
                honest_score[branch] = scores
                honest_ejected[branch] = ejected

                # Byzantine group on this branch.
                byz_active = byzantine_on_a if branch == "A" else not byzantine_on_a
                if not byzantine_ejected[branch]:
                    byzantine_stake[branch] = max(
                        0.0,
                        byzantine_stake[branch]
                        - byzantine_score[branch] * byzantine_stake[branch] / quotient,
                    )
                    if byz_active:
                        byzantine_score[branch] = max(
                            0.0, byzantine_score[branch] - cfg.inactivity_score_recovery
                        )
                    else:
                        byzantine_score[branch] += cfg.inactivity_score_bias
                    if byzantine_stake[branch] <= ejection:
                        byzantine_ejected[branch] = True

            if epoch in record_epochs:
                for branch in ("A", "B"):
                    honest_total = honest_weight * float(
                        np.sum(np.where(honest_ejected[branch], 0.0, honest_stake[branch]))
                    )
                    byz_total = (
                        0.0 if byzantine_ejected[branch] else byzantine_weight * byzantine_stake[branch]
                    )
                    total = honest_total + byz_total
                    record[branch][epoch] = byz_total / total if total > 0 else 0.0

        return BouncingTrialResult(
            stop_epoch=stop_epoch,
            survived=survived,
            byzantine_proportion_branch_a=record["A"],
            byzantine_proportion_branch_b=record["B"],
        )

    # ------------------------------------------------------------------
    def run(
        self,
        n_trials: int,
        horizon: int,
        record_epochs: Optional[Sequence[int]] = None,
    ) -> BouncingMonteCarloResult:
        """Run ``n_trials`` independent attack trials up to ``horizon`` epochs."""
        if n_trials <= 0:
            raise ValueError("n_trials must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        epochs = (
            sorted(set(int(e) for e in record_epochs))
            if record_epochs is not None
            else [horizon]
        )
        rng = np.random.default_rng(self.seed)
        result = BouncingMonteCarloResult(
            beta0=self.beta0, p0=self.p0, horizon=horizon, record_epochs=epochs
        )
        for _ in range(n_trials):
            result.trials.append(self._run_trial(rng, horizon, epochs))
        return result

    # ------------------------------------------------------------------
    def honest_stake_sample(
        self, epoch: int, n_samples: int = 5000, seed: Optional[int] = None
    ) -> np.ndarray:
        """Sample honest stakes at ``epoch`` (the empirical Figure-9 histogram).

        Runs the per-validator dynamics with no attack-stopping so that the
        sample reflects the conditional law used by the paper's Figure 9.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        cfg = self.config
        quotient = float(cfg.inactivity_penalty_quotient)
        stakes = np.full(n_samples, cfg.max_effective_balance)
        scores = np.zeros(n_samples)
        ejected = np.zeros(n_samples, dtype=bool)
        for _ in range(epoch):
            active = rng.random(n_samples) < self.p0
            penalties = scores * stakes / quotient
            stakes = np.where(ejected, stakes, np.maximum(0.0, stakes - penalties))
            scores = np.where(
                active,
                np.maximum(0.0, scores - cfg.inactivity_score_recovery),
                scores + cfg.inactivity_score_bias,
            )
            newly_ejected = (~ejected) & (stakes <= cfg.ejection_balance)
            stakes = np.where(newly_ejected, 0.0, stakes)
            ejected |= newly_ejected
        return stakes
