"""The probabilistic bouncing attack, revisited with the inactivity leak.

Section 5.3 of the paper revisits the probabilistic bouncing attack of
[Pavloff et al., SAC 2023]: Byzantine validators withhold votes and release
them at opportune times so that honest validators keep "bouncing" between
the two branches of a fork, delaying finality.  Because the attack lasts
longer than 4 epochs it triggers an inactivity leak, so the stakes of
honest validators — randomly inactive on whichever branch they are not on —
erode according to the random-walk model of
:mod:`repro.analysis.randomwalk`, while the Byzantine stake follows the
deterministic semi-active trajectory.

This module collects:

* the feasibility condition on ``p0`` (Equation 14),
* the attack-continuation probability ``(1 - (1-beta0)^j)^k``,
* the Markov bounce model of Figure 8,
* the probability that the Byzantine stake proportion exceeds one-third at
  epoch ``t`` (Equations 23–24, the Figure-10 curves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.analysis.distributions import BouncingStakeDistribution
from repro.leak.stake import Behavior, continuous_ejection_epoch, semi_active_stake


# ----------------------------------------------------------------------
# Equation 14: feasibility window on p0
# ----------------------------------------------------------------------
def p0_feasibility_window(beta0: float) -> Tuple[float, float]:
    """Bounds on the honest split ``p0`` for the attack to continue (Eq. 14).

    ``(2 - 3 beta0) / (3 (1 - beta0)) < p0 < 2 / (3 (1 - beta0))``:
    (a) the honest validators on the favoured branch must not justify it on
    their own, and (b) together with the withheld Byzantine votes they must
    be able to justify it.
    """
    if not 0.0 <= beta0 < 1.0:
        raise ValueError("beta0 must lie in [0, 1)")
    lower = (2.0 - 3.0 * beta0) / (3.0 * (1.0 - beta0))
    upper = 2.0 / (3.0 * (1.0 - beta0))
    return lower, upper


def is_feasible_split(p0: float, beta0: float) -> bool:
    """True when ``p0`` lies strictly inside the Equation-14 window."""
    lower, upper = p0_feasibility_window(beta0)
    return lower < p0 < upper


# ----------------------------------------------------------------------
# Attack-continuation probability
# ----------------------------------------------------------------------
def continuation_probability_per_epoch(
    beta0: float, window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS
) -> float:
    """Probability that a Byzantine proposer occupies one of the first j slots.

    The attack continues through an epoch only if at least one of the first
    ``j`` proposers of the epoch is Byzantine, which with stake-proportional
    proposer election happens with probability ``1 - (1 - beta0)^j``.
    """
    if not 0.0 <= beta0 <= 1.0:
        raise ValueError("beta0 must lie in [0, 1]")
    if window_slots < 1:
        raise ValueError("window_slots must be at least 1")
    return 1.0 - (1.0 - beta0) ** window_slots


def attack_duration_probability(
    beta0: float,
    epochs: int,
    window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS,
) -> float:
    """Probability that the attack lasts at least ``epochs`` epochs.

    ``(1 - (1 - beta0)^j)^k`` — the paper evaluates it at ``k = 7000`` and
    ``beta0 = 1/3`` to obtain ``≈ 1.01e-121``, ruling out strategies that
    need the bounce to last until the Byzantine ejection epoch.
    """
    if epochs < 0:
        raise ValueError("epochs must be non-negative")
    per_epoch = continuation_probability_per_epoch(beta0, window_slots)
    if per_epoch == 0.0:
        return 0.0 if epochs > 0 else 1.0
    return per_epoch ** epochs


def log10_attack_duration_probability(
    beta0: float,
    epochs: int,
    window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS,
) -> float:
    """Base-10 logarithm of :func:`attack_duration_probability` (avoids underflow)."""
    per_epoch = continuation_probability_per_epoch(beta0, window_slots)
    if per_epoch <= 0.0:
        return float("-inf") if epochs > 0 else 0.0
    return epochs * math.log10(per_epoch)


def expected_attack_duration(
    beta0: float, window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS
) -> float:
    """Expected number of epochs the attack persists (geometric stopping)."""
    per_epoch = continuation_probability_per_epoch(beta0, window_slots)
    if per_epoch >= 1.0:
        return float("inf")
    return per_epoch / (1.0 - per_epoch)


# ----------------------------------------------------------------------
# Figure 8: the Markov bounce model of honest validators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MarkovBounceModel:
    """Branch occupancy of an honest validator during the bounce.

    At each epoch the Byzantine release schedule puts a proportion ``p0`` of
    honest validators on branch A and ``1 - p0`` on branch B, independently
    of the past (Figure 8).  From the point of view of one branch, the
    validator is *active* when it lands there and *inactive* otherwise.
    """

    p0: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p0 <= 1.0:
            raise ValueError("p0 must lie in [0, 1]")

    def transition_matrix(self) -> np.ndarray:
        """2x2 transition matrix between branches A and B (rows sum to 1)."""
        return np.array([[self.p0, 1.0 - self.p0], [self.p0, 1.0 - self.p0]])

    def stationary_distribution(self) -> np.ndarray:
        """Stationary occupancy: ``[p0, 1 - p0]`` (the chain is memoryless)."""
        return np.array([self.p0, 1.0 - self.p0])

    def two_epoch_path_probabilities(self) -> Dict[str, float]:
        """Probabilities of the four branch paths over two epochs (Figure 8)."""
        p = self.p0
        return {
            "AA": p * p,
            "AB": p * (1.0 - p),
            "BA": (1.0 - p) * p,
            "BB": (1.0 - p) * (1.0 - p),
        }

    def two_epoch_score_increments(self) -> Dict[int, float]:
        """Equation 15: distribution of the score change over two epochs,
        seen from branch A."""
        p = self.p0
        return {
            8: p * (1.0 - p),
            3: p * p + (1.0 - p) * (1.0 - p),
            -2: p * (1.0 - p),
        }

    def occupancy_after(self, epochs: int, start_on_a: bool = True) -> np.ndarray:
        """Branch occupancy distribution after ``epochs`` epochs."""
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        state = np.array([1.0, 0.0]) if start_on_a else np.array([0.0, 1.0])
        matrix = self.transition_matrix()
        for _ in range(epochs):
            state = state @ matrix
        return state


# ----------------------------------------------------------------------
# Equations 23–24: probability of exceeding the one-third threshold
# ----------------------------------------------------------------------
@dataclass
class BouncingAttackModel:
    """The full Section-5.3 model: bounce + leak + threshold probability."""

    beta0: float
    p0: float = 0.5
    s0: float = constants.MAX_EFFECTIVE_BALANCE_ETH
    window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS
    distribution: BouncingStakeDistribution = field(init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.beta0 <= 0.5:
            raise ValueError("beta0 must lie in [0, 0.5] for the bouncing model")
        if not 0.0 < self.p0 < 1.0:
            raise ValueError("p0 must lie strictly between 0 and 1")
        self.distribution = BouncingStakeDistribution(p0=self.p0, s0=self.s0)

    # -- stakes -----------------------------------------------------------
    def byzantine_stake(self, t: float) -> float:
        """Byzantine per-validator stake at epoch ``t`` (semi-active trajectory).

        Byzantine validators alternate activity between the two branches, so
        on either branch they follow ``s0 exp(-3 t^2 / 2**28)`` until their
        ejection around epoch 7653.
        """
        ejection = self.byzantine_ejection_epoch()
        if t >= ejection:
            return 0.0
        return semi_active_stake(t, self.s0)

    def byzantine_ejection_epoch(self) -> float:
        """Epoch at which the Byzantine (semi-active) validators are ejected."""
        ejection = continuous_ejection_epoch(Behavior.SEMI_ACTIVE, self.s0)
        assert ejection is not None
        return ejection

    # -- threshold probability (Equation 24) ------------------------------
    def exceed_threshold_probability(
        self, t: float, both_branches: bool = False
    ) -> float:
        """Probability that the Byzantine proportion exceeds 1/3 at epoch ``t``.

        Equation 24: ``F̄( 2 beta0 / (1 - beta0) * sB(t), t )`` where ``F̄``
        is the capped stake CDF of the honest validators and ``sB`` the
        Byzantine (semi-active) stake.  With ``both_branches=True`` the
        probability is doubled (capped at 1), reflecting the paper's remark
        that the attack plays out on two branches simultaneously and the
        threshold only needs to break on one of them.
        """
        if t <= 0:
            return 0.0
        if self.beta0 >= 1.0:
            return 1.0
        stake_bound = 2.0 * self.beta0 / (1.0 - self.beta0) * self.byzantine_stake(t)
        if stake_bound <= 0.0:
            # Byzantine validators are ejected; their proportion is zero.
            return 0.0
        probability = self.distribution.capped_cdf(stake_bound, t)
        if both_branches:
            probability = min(1.0, 2.0 * probability)
        return probability

    def exceed_probability_series(
        self, epochs: Sequence[int], both_branches: bool = False
    ) -> List[float]:
        """Evaluate :meth:`exceed_threshold_probability` over many epochs (Figure 10)."""
        return [
            self.exceed_threshold_probability(float(t), both_branches) for t in epochs
        ]

    # -- feasibility and duration -----------------------------------------
    def feasible_p0_window(self) -> Tuple[float, float]:
        """Equation 14 bounds for this ``beta0``."""
        return p0_feasibility_window(self.beta0)

    def is_setup_feasible(self) -> bool:
        """True when the chosen ``p0`` satisfies Equation 14."""
        return is_feasible_split(self.p0, self.beta0)

    def duration_probability(self, epochs: int) -> float:
        """Probability the bounce survives ``epochs`` epochs."""
        return attack_duration_probability(self.beta0, epochs, self.window_slots)

    def log10_duration_probability(self, epochs: int) -> float:
        """Base-10 log of the duration probability (Figure-10 caveat numbers)."""
        return log10_attack_duration_probability(self.beta0, epochs, self.window_slots)

    # -- Monte-Carlo cross-check ------------------------------------------
    def simulate_exceed_probability(
        self,
        t: int,
        n_samples: int = 20_000,
        seed: int = 0,
    ) -> float:
        """Monte-Carlo estimate of the Equation-24 probability.

        Samples honest inactivity-score walks (with the protocol's
        clamp-at-zero rule), converts them to stakes via the discrete
        penalty rule, applies ejection/cap, and compares against the
        Byzantine semi-active stake.  This is the discrete ground truth the
        closed form approximates.
        """
        rng = np.random.default_rng(seed)
        active = rng.random((n_samples, t)) < self.p0
        scores = np.zeros(n_samples)
        stakes = np.full(n_samples, self.s0)
        ejected = np.zeros(n_samples, dtype=bool)
        quotient = float(constants.INACTIVITY_PENALTY_QUOTIENT)
        for epoch in range(t):
            penalties = scores * stakes / quotient
            stakes = np.where(ejected, stakes, np.maximum(0.0, stakes - penalties))
            scores = np.where(
                active[:, epoch], np.maximum(0.0, scores - 1.0), scores + 4.0
            )
            newly_ejected = (~ejected) & (stakes <= constants.EJECTION_BALANCE_ETH)
            stakes = np.where(newly_ejected, 0.0, stakes)
            ejected |= newly_ejected
        byzantine = self.byzantine_stake(float(t))
        if self.beta0 >= 1.0:
            return 1.0
        bound = 2.0 * self.beta0 / (1.0 - self.beta0) * byzantine
        return float(np.mean(stakes < bound))
