"""Exceeding the one-third Byzantine safety threshold (Section 5.2.3).

Byzantine validators that are semi-active on both branches can, instead of
finalizing as soon as possible, wait until the honest validators deemed
inactive on the branch are ejected.  At that moment the Byzantine stake
proportion peaks (Equation 13).  This module computes the peak, the set of
``(p0, beta0)`` pairs for which the peak exceeds 1/3 (Figure 7), and the
time at which beta(t) first crosses the threshold (Equation 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro import constants
from repro.leak.ratios import (
    byzantine_proportion,
    max_byzantine_proportion,
    min_beta0_to_exceed_threshold,
)

EJECTION_EPOCH = float(constants.PAPER_INACTIVE_EJECTION_EPOCH)
THRESHOLD = constants.BYZANTINE_SAFETY_THRESHOLD


@dataclass(frozen=True)
class ThresholdCrossing:
    """Result of a beta(t) threshold analysis for one (p0, beta0) pair."""

    p0: float
    beta0: float
    #: Peak Byzantine proportion (Equation 13, evaluated at honest ejection).
    beta_max: float
    #: True when the peak is at least 1/3.
    exceeds_threshold: bool
    #: First epoch at which beta(t) >= 1/3, or None if it never does before
    #: the honest ejection epoch.
    crossing_epoch: Optional[float]


def beta_max(p0: float, beta0: float, ejection_epoch: float = EJECTION_EPOCH) -> float:
    """Maximum Byzantine proportion reachable on the branch (Equation 13)."""
    return max_byzantine_proportion(p0, beta0, ejection_epoch)


def exceeds_threshold(
    p0: float,
    beta0: float,
    threshold: float = THRESHOLD,
    ejection_epoch: float = EJECTION_EPOCH,
) -> bool:
    """True when beta_max(p0, beta0) >= threshold (the Figure-7 condition)."""
    return beta_max(p0, beta0, ejection_epoch) >= threshold


def crossing_epoch(
    p0: float,
    beta0: float,
    threshold: float = THRESHOLD,
    ejection_epoch: float = EJECTION_EPOCH,
) -> Optional[float]:
    """First epoch at which beta(t, p0, beta0) reaches ``threshold`` (Eq. 12).

    The proportion beta(t) of Equation 11 is continuous and, before the
    honest ejection, monotonically approaches its maximum; the crossing (if
    any) is located with Brent's method.  Returns ``None`` when the
    threshold is never reached before ``ejection_epoch``.
    """

    def gap(t: float) -> float:
        return byzantine_proportion(t, p0, beta0) - threshold

    if gap(0.0) >= 0.0:
        return 0.0
    # beta(t) peaks at the ejection epoch: just before ejection the inactive
    # honest stake is smallest relative to the Byzantine stake.
    if gap(ejection_epoch) < 0.0:
        # The continuous pre-ejection proportion never crosses; the jump at
        # ejection (Equation 13) may still cross, which beta_max captures.
        if beta_max(p0, beta0, ejection_epoch) >= threshold:
            return ejection_epoch
        return None
    return float(optimize.brentq(gap, 0.0, ejection_epoch, xtol=1e-9, maxiter=200))


def analyse_pair(
    p0: float,
    beta0: float,
    threshold: float = THRESHOLD,
    ejection_epoch: float = EJECTION_EPOCH,
) -> ThresholdCrossing:
    """Full threshold analysis of one (p0, beta0) pair."""
    peak = beta_max(p0, beta0, ejection_epoch)
    return ThresholdCrossing(
        p0=p0,
        beta0=beta0,
        beta_max=peak,
        exceeds_threshold=peak >= threshold,
        crossing_epoch=crossing_epoch(p0, beta0, threshold, ejection_epoch),
    )


# ----------------------------------------------------------------------
# Figure 7: the feasible region
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ThresholdRegion:
    """The (p0, beta0) pairs for which the Byzantine proportion can exceed 1/3."""

    p0_values: Sequence[float]
    beta0_values: Sequence[float]
    #: feasible[i][j] is True when (p0_values[i], beta0_values[j]) satisfies
    #: beta_max >= 1/3 on the branch where the honest-active proportion is p0.
    feasible_branch_1: np.ndarray
    #: Same, for the other branch (honest-active proportion 1 - p0), i.e.
    #: whether the threshold can be exceeded on *both* branches.
    feasible_branch_2: np.ndarray

    def feasible_on_both(self) -> np.ndarray:
        """Pairs for which the threshold is exceeded on both branches simultaneously."""
        return np.logical_and(self.feasible_branch_1, self.feasible_branch_2)

    def min_beta0_both_branches(self) -> float:
        """Smallest beta0 in the grid feasible on both branches."""
        both = self.feasible_on_both()
        feasible_betas = [
            self.beta0_values[j]
            for i in range(len(self.p0_values))
            for j in range(len(self.beta0_values))
            if both[i, j]
        ]
        return min(feasible_betas) if feasible_betas else float("nan")


def compute_threshold_region(
    p0_values: Optional[Sequence[float]] = None,
    beta0_values: Optional[Sequence[float]] = None,
    threshold: float = THRESHOLD,
    ejection_epoch: float = EJECTION_EPOCH,
) -> ThresholdRegion:
    """Evaluate the Figure-7 feasibility condition over a (p0, beta0) grid."""
    p0_grid = np.linspace(0.0, 1.0, 101) if p0_values is None else np.asarray(p0_values)
    beta_grid = (
        np.linspace(0.0, 0.33, 100) if beta0_values is None else np.asarray(beta0_values)
    )
    feasible_1 = np.zeros((len(p0_grid), len(beta_grid)), dtype=bool)
    feasible_2 = np.zeros_like(feasible_1)
    for i, p0 in enumerate(p0_grid):
        for j, beta0 in enumerate(beta_grid):
            feasible_1[i, j] = (
                beta_max(float(p0), float(beta0), ejection_epoch) >= threshold
            )
            feasible_2[i, j] = (
                beta_max(1.0 - float(p0), float(beta0), ejection_epoch) >= threshold
            )
    return ThresholdRegion(
        p0_values=list(map(float, p0_grid)),
        beta0_values=list(map(float, beta_grid)),
        feasible_branch_1=feasible_1,
        feasible_branch_2=feasible_2,
    )


def critical_beta0(p0: float = 0.5, ejection_epoch: float = EJECTION_EPOCH) -> float:
    """The paper's lower bound beta0 = 1/(1 + 4 e^{-3*4685^2/2^28}) ≈ 0.2421.

    For an even honest split (p0 = 0.5) this is the smallest initial
    Byzantine proportion that can eventually exceed one-third on both
    branches (Section 5.2.3).
    """
    return min_beta0_to_exceed_threshold(p0, THRESHOLD, ejection_epoch)
