"""Random-walk model of the inactivity score under the bouncing attack.

During the probabilistic bouncing attack (Section 5.3), an honest validator
lands on one branch or the other each epoch with probabilities ``p0`` and
``1 - p0``.  Seen from one branch, its inactivity score performs a random
walk: +4 when the validator ends up on the *other* branch (inactive here),
-1 when it ends up on this branch (active here).  The paper observes that
the two-epoch increments (Equation 15) are the convolution of two simple
random walks and approximates the score distribution by a Gaussian
(Equation 16) with drift ``V = 3/2`` and diffusion ``D = 25 p0 (1 - p0)``.

This module provides both the exact discrete distribution (computed by
dynamic programming over the walk) and the Gaussian approximation, so the
tests can check the central-limit convergence the paper relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants

#: Score increment when the validator is inactive on the branch (Equation 1).
INACTIVE_STEP = constants.INACTIVITY_SCORE_BIAS
#: Score decrement when the validator is active on the branch (Equation 1).
ACTIVE_STEP = -constants.INACTIVITY_SCORE_RECOVERY_PER_EPOCH


def drift_per_epoch(p0: float = 0.5) -> float:
    """Mean score increment per epoch, averaged over the two branches.

    Over two epochs the score moves by +8, +3 or −2 with the probabilities
    of Equation 15; the mean increment is +3 per two epochs, i.e. the
    paper's ``V = 3/2`` — independent of ``p0``.
    """
    _validate_probability(p0)
    # On this branch: +4 with prob (1 - p0) [validator went to the other
    # branch], -1 with prob p0.  Averaged with the complementary branch the
    # drift is (bias - recovery) / 2 = 3/2, the paper's V.
    return (INACTIVE_STEP + ACTIVE_STEP) / 2.0


def diffusion_coefficient(p0: float = 0.5) -> float:
    """The paper's diffusion coefficient ``D = 25 p0 (1 - p0)``.

    The 25 is ``(bias + recovery)^2 = (4 + 1)^2``: the squared gap between
    the walk's two steps.
    """
    _validate_probability(p0)
    return float((INACTIVE_STEP - ACTIVE_STEP) ** 2) * p0 * (1.0 - p0)


def _validate_probability(p0: float) -> None:
    if not 0.0 <= p0 <= 1.0:
        raise ValueError(f"p0 must lie in [0, 1], got {p0}")


# ----------------------------------------------------------------------
# Equation 15: two-epoch increments
# ----------------------------------------------------------------------
def two_epoch_increment_distribution(p0: float) -> Dict[int, float]:
    """Probability of the inactivity-score change over two epochs (Eq. 15).

    +8 with probability p0(1-p0) (on the other branch both epochs),
    +3 with probability p0^2 + (1-p0)^2 (one epoch on each branch),
    −2 with probability p0(1-p0) (on this branch both epochs).
    """
    _validate_probability(p0)
    cross = p0 * (1.0 - p0)
    same = p0 * p0 + (1.0 - p0) * (1.0 - p0)
    return {8: cross, 3: same, -2: cross}


# ----------------------------------------------------------------------
# Exact discrete walk distribution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WalkDistribution:
    """A discrete distribution over inactivity scores at a fixed epoch."""

    epoch: int
    #: Mapping score -> probability.
    probabilities: Dict[int, float]

    def mean(self) -> float:
        """Mean score."""
        return sum(score * prob for score, prob in self.probabilities.items())

    def variance(self) -> float:
        """Variance of the score."""
        mean = self.mean()
        return sum(
            (score - mean) ** 2 * prob for score, prob in self.probabilities.items()
        )

    def probability_at_least(self, score: int) -> float:
        """P[S >= score]."""
        return sum(prob for s, prob in self.probabilities.items() if s >= score)

    def support(self) -> List[int]:
        """Scores with non-zero probability, sorted."""
        return sorted(self.probabilities)


def exact_score_distribution(
    epochs: int,
    p0: float,
    clamp_at_zero: bool = True,
    on_branch_probability: Optional[float] = None,
) -> WalkDistribution:
    """Exact distribution of the inactivity score after ``epochs`` epochs.

    Per epoch the validator is active on this branch with probability
    ``on_branch_probability`` (defaults to ``p0``) and inactive otherwise.
    When ``clamp_at_zero`` is set (the protocol's rule) the score is floored
    at 0 each epoch; the paper's analytical treatment drops the floor for
    tractability, which this flag lets the tests compare against.
    """
    _validate_probability(p0)
    active_probability = p0 if on_branch_probability is None else on_branch_probability
    _validate_probability(active_probability)
    if epochs < 0:
        raise ValueError("epochs must be non-negative")

    distribution: Dict[int, float] = {0: 1.0}
    for _ in range(epochs):
        updated: Dict[int, float] = {}
        for score, probability in distribution.items():
            # Active on this branch.
            active_score = score + ACTIVE_STEP
            if clamp_at_zero:
                active_score = max(0, active_score)
            updated[active_score] = updated.get(active_score, 0.0) + probability * active_probability
            # Inactive on this branch.
            inactive_score = score + INACTIVE_STEP
            updated[inactive_score] = (
                updated.get(inactive_score, 0.0) + probability * (1.0 - active_probability)
            )
        distribution = updated
    return WalkDistribution(epoch=epochs, probabilities=distribution)


# ----------------------------------------------------------------------
# Equation 16: Gaussian approximation
# ----------------------------------------------------------------------
def gaussian_score_density(
    score: float, t: float, p0: float = 0.5
) -> float:
    """The paper's Gaussian approximation phi(I, t) of the score density (Eq. 16).

    ``phi(I, t) = 1/sqrt(4 pi D t) * exp(-(I - V t)^2 / (4 D t))`` with
    ``V = 3/2`` and ``D = 25 p0 (1 - p0)``.
    """
    if t <= 0:
        raise ValueError("t must be positive for the Gaussian approximation")
    diffusion = diffusion_coefficient(p0)
    drift = drift_per_epoch(p0)
    variance_term = 4.0 * diffusion * t
    return (
        1.0
        / math.sqrt(math.pi * variance_term)
        * math.exp(-((score - drift * t) ** 2) / variance_term)
    )


def gaussian_score_mean(t: float, p0: float = 0.5) -> float:
    """Mean of the Gaussian score approximation: ``V t``."""
    return drift_per_epoch(p0) * t


def gaussian_score_std(t: float, p0: float = 0.5) -> float:
    """Standard deviation of the Gaussian score approximation: ``sqrt(2 D t)``."""
    if t < 0:
        raise ValueError("t must be non-negative")
    return math.sqrt(2.0 * diffusion_coefficient(p0) * t)


def sample_walks(
    epochs: int,
    p0: float,
    n_samples: int,
    seed: int = 0,
    clamp_at_zero: bool = True,
    chunk_rows: Optional[int] = None,
) -> np.ndarray:
    """Monte-Carlo sample of ``n_samples`` inactivity-score walks.

    Used by the validation benchmarks to compare the empirical score (and
    stake) distribution against the paper's closed forms.

    ``chunk_rows`` bounds the working set: samples are drawn and folded in
    row blocks of at most that many walks, so huge sample counts no longer
    materialise an ``(n_samples, epochs)`` matrix at once.  Because the
    full-matrix draw fills its values in C (row-major) order, drawing the
    same rows block by block consumes the generator's stream identically —
    the result is bit-identical whatever ``chunk_rows`` is.
    """
    _validate_probability(p0)
    if epochs < 0:
        raise ValueError("epochs must be non-negative")
    if chunk_rows is not None and chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    rng = np.random.default_rng(seed)
    block = n_samples if chunk_rows is None else min(chunk_rows, n_samples)
    step_dtype = np.result_type(
        np.asarray(ACTIVE_STEP), np.asarray(INACTIVE_STEP)
    )
    scores = np.empty(n_samples, dtype=float if clamp_at_zero else step_dtype)
    for start in range(0, n_samples, max(block, 1)):
        stop = min(start + block, n_samples)
        active = rng.random((stop - start, epochs)) < p0
        steps = np.where(active, ACTIVE_STEP, INACTIVE_STEP)
        if not clamp_at_zero:
            scores[start:stop] = steps.sum(axis=1)
            continue
        folded = np.zeros(stop - start)
        for epoch in range(epochs):
            folded = np.maximum(0, folded + steps[:, epoch])
        scores[start:stop] = folded
    return scores
