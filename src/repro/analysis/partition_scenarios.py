"""End-to-end drivers for the five scenarios of Table 1.

Each scenario builds a two-branch fork with the appropriate validator
groups and Byzantine strategy, runs the discrete aggregate leak simulator
(:mod:`repro.leak.dynamics`), and reports the outcome the paper associates
with it:

========  =============================  ============================
Scenario  Setting                         Outcome
========  =============================  ============================
5.1       All honest                      two finalized branches
5.2.1     Slashable Byzantine             two finalized branches
5.2.2     Non-slashable Byzantine         two finalized branches
5.2.3     Non-slashable Byzantine         beta > 1/3
5.3       Probabilistic bouncing attack   beta > 1/3 (probabilistic)
========  =============================  ============================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import constants
from repro.analysis.bouncing import BouncingAttackModel
from repro.analysis.finalization_time import (
    ByzantineStrategy,
    conflicting_finalization_time,
)
from repro.leak.dynamics import LeakResult, LeakSimulation
from repro.leak.groups import (
    BranchView,
    GroupSpec,
    always_active,
    never_active,
    semi_active_even,
    semi_active_odd,
)
from repro.spec.config import SpecConfig

BRANCH_1 = "branch-1"
BRANCH_2 = "branch-2"


@dataclass
class ScenarioOutcome:
    """Result of one Table-1 scenario."""

    scenario_id: str
    description: str
    p0: float
    beta0: float
    #: The qualitative outcome string matching Table 1.
    outcome: str
    #: Epoch at which both branches had finalized (None if it never happened).
    conflicting_finalization_epoch: Optional[int] = None
    #: Largest Byzantine stake proportion observed on any branch.
    max_byzantine_proportion: float = 0.0
    #: Whether the Byzantine proportion exceeded the one-third threshold.
    threshold_exceeded: bool = False
    #: Analytical prediction of the conflicting-finalization epoch, when the
    #: paper provides a closed form for the scenario.
    analytical_epoch: Optional[float] = None
    #: Additional scenario-specific numbers.
    details: Dict[str, float] = field(default_factory=dict)
    #: The underlying simulation result, for inspection (not serialised).
    simulation: Optional[LeakResult] = None


def _honest_groups(p0: float, beta0: float) -> Tuple[GroupSpec, GroupSpec, GroupSpec, GroupSpec]:
    """Honest groups for both branches: active on theirs, inactive on the other."""
    honest_1_weight = p0 * (1.0 - beta0)
    honest_2_weight = (1.0 - p0) * (1.0 - beta0)
    return (
        GroupSpec(name="honest-1", weight=honest_1_weight, pattern=always_active),
        GroupSpec(name="honest-2", weight=honest_2_weight, pattern=never_active),
        GroupSpec(name="honest-1", weight=honest_1_weight, pattern=never_active),
        GroupSpec(name="honest-2", weight=honest_2_weight, pattern=always_active),
    )


# ----------------------------------------------------------------------
# Scenario 5.1 — all honest validators
# ----------------------------------------------------------------------
def run_all_honest_scenario(
    p0: float = 0.5,
    max_epochs: int = 6000,
    config: Optional[SpecConfig] = None,
) -> ScenarioOutcome:
    """Scenario 5.1: a partition with only honest validators.

    Both sides keep trying to finalize; the leak erodes the stake each side
    deems inactive until both regain a supermajority and finalize
    conflicting checkpoints — a Safety loss with no Byzantine validator at
    all.
    """
    h1_on_1, h2_on_1, h1_on_2, h2_on_2 = _honest_groups(p0, beta0=0.0)
    simulation = LeakSimulation(
        branch_specs={BRANCH_1: (h1_on_1, h2_on_1), BRANCH_2: (h1_on_2, h2_on_2)},
        config=config or SpecConfig.mainnet(),
    )
    result = simulation.run(max_epochs)
    analytical = conflicting_finalization_time(ByzantineStrategy.NONE, p0, 0.0)
    return ScenarioOutcome(
        scenario_id="5.1",
        description="All honest validators, network partition",
        p0=p0,
        beta0=0.0,
        outcome="2 finalized branches",
        conflicting_finalization_epoch=result.conflicting_finalization_epoch(),
        max_byzantine_proportion=0.0,
        threshold_exceeded=False,
        analytical_epoch=analytical.finalization_epoch,
        simulation=result,
    )


# ----------------------------------------------------------------------
# Scenario 5.2.1 — slashable Byzantine behaviour
# ----------------------------------------------------------------------
def run_slashable_byzantine_scenario(
    beta0: float,
    p0: float = 0.5,
    max_epochs: int = 6000,
    config: Optional[SpecConfig] = None,
) -> ScenarioOutcome:
    """Scenario 5.2.1: Byzantine validators attest on both branches every epoch.

    Being active on both branches in the same epoch is a slashable double
    vote, but before GST the evidence cannot cross the partition, so the
    attack expedites conflicting finalization unpunished.
    """
    h1_on_1, h2_on_1, h1_on_2, h2_on_2 = _honest_groups(p0, beta0)
    byzantine_on_1 = GroupSpec(
        name="byzantine", weight=beta0, pattern=always_active, byzantine=True
    )
    byzantine_on_2 = GroupSpec(
        name="byzantine", weight=beta0, pattern=always_active, byzantine=True
    )
    simulation = LeakSimulation(
        branch_specs={
            BRANCH_1: (h1_on_1, h2_on_1, byzantine_on_1),
            BRANCH_2: (h1_on_2, h2_on_2, byzantine_on_2),
        },
        config=config or SpecConfig.mainnet(),
    )
    result = simulation.run(max_epochs)
    analytical = conflicting_finalization_time(ByzantineStrategy.SLASHING, p0, beta0)
    max_beta = max(
        branch.max_byzantine_proportion() for branch in result.branches.values()
    )
    return ScenarioOutcome(
        scenario_id="5.2.1",
        description="Byzantine validators active on both branches (slashable)",
        p0=p0,
        beta0=beta0,
        outcome="2 finalized branches",
        conflicting_finalization_epoch=result.conflicting_finalization_epoch(),
        max_byzantine_proportion=max_beta,
        threshold_exceeded=max_beta >= constants.BYZANTINE_SAFETY_THRESHOLD,
        analytical_epoch=analytical.finalization_epoch,
        simulation=result,
    )


# ----------------------------------------------------------------------
# Scenario 5.2.2 — non-slashable Byzantine behaviour (finalize ASAP)
# ----------------------------------------------------------------------
class NonSlashableFinalizer:
    """Adaptive semi-active Byzantine strategy that finalizes both branches.

    The Byzantine validators alternate between the branches (active on
    branch 1 on even epochs, on branch 2 on odd epochs) — never active on
    both in the same epoch, hence never slashable.  As soon as a branch's
    active ratio reaches the supermajority threshold, they stay active on
    that branch for consecutive epochs until it finalizes, then move on to
    the other branch (Section 5.2.2 / Figure 5).
    """

    def __init__(self, supermajority: float = constants.SUPERMAJORITY_FRACTION) -> None:
        self.supermajority = supermajority
        self._burst_branch: Optional[str] = None
        self._finalized_branches: set = set()

    def pattern_for(self, branch_name: str, parity: int):
        """Return the activity pattern callable for one branch.

        ``parity`` selects the phase of the alternation (0 = even epochs).
        """

        def pattern(epoch: int, view: BranchView) -> bool:
            if view.finalized:
                self._finalized_branches.add(branch_name)
                if self._burst_branch == branch_name:
                    self._burst_branch = None
                # Once the branch finalized, fall back to the alternation.
                return epoch % 2 == parity
            if self._burst_branch == branch_name:
                return True
            if (
                self._burst_branch is None
                and view.previous_active_ratio >= self.supermajority
            ):
                self._burst_branch = branch_name
                return True
            if self._burst_branch is not None:
                # Busy finalizing the other branch: stay silent here so the
                # behaviour remains non-slashable.
                return False
            return epoch % 2 == parity

        return pattern


def run_non_slashable_byzantine_scenario(
    beta0: float,
    p0: float = 0.5,
    max_epochs: int = 6000,
    config: Optional[SpecConfig] = None,
) -> ScenarioOutcome:
    """Scenario 5.2.2: semi-active Byzantine validators expedite conflicting finalization."""
    h1_on_1, h2_on_1, h1_on_2, h2_on_2 = _honest_groups(p0, beta0)
    strategy = NonSlashableFinalizer()
    byzantine_on_1 = GroupSpec(
        name="byzantine",
        weight=beta0,
        pattern=strategy.pattern_for(BRANCH_1, parity=0),
        byzantine=True,
    )
    byzantine_on_2 = GroupSpec(
        name="byzantine",
        weight=beta0,
        pattern=strategy.pattern_for(BRANCH_2, parity=1),
        byzantine=True,
    )
    simulation = LeakSimulation(
        branch_specs={
            BRANCH_1: (h1_on_1, h2_on_1, byzantine_on_1),
            BRANCH_2: (h1_on_2, h2_on_2, byzantine_on_2),
        },
        config=config or SpecConfig.mainnet(),
    )
    result = simulation.run(max_epochs)
    analytical = conflicting_finalization_time(ByzantineStrategy.NON_SLASHING, p0, beta0)
    max_beta = max(
        branch.max_byzantine_proportion() for branch in result.branches.values()
    )
    return ScenarioOutcome(
        scenario_id="5.2.2",
        description="Byzantine validators semi-active on both branches (non-slashable)",
        p0=p0,
        beta0=beta0,
        outcome="2 finalized branches",
        conflicting_finalization_epoch=result.conflicting_finalization_epoch(),
        max_byzantine_proportion=max_beta,
        threshold_exceeded=max_beta >= constants.BYZANTINE_SAFETY_THRESHOLD,
        analytical_epoch=analytical.finalization_epoch,
        simulation=result,
    )


# ----------------------------------------------------------------------
# Scenario 5.2.3 — exceed the one-third threshold
# ----------------------------------------------------------------------
def run_threshold_exceeding_scenario(
    beta0: float,
    p0: float = 0.5,
    max_epochs: int = 8000,
    config: Optional[SpecConfig] = None,
) -> ScenarioOutcome:
    """Scenario 5.2.3: Byzantine validators delay finalization to grow their share.

    Instead of bursting to finalize once the supermajority is within reach,
    the Byzantine validators stay strictly semi-active so that justification
    happens at most every other epoch and finalization never does; the
    inactive honest validators keep leaking until their ejection, at which
    point the Byzantine proportion peaks (Equation 13).
    """
    h1_on_1, h2_on_1, h1_on_2, h2_on_2 = _honest_groups(p0, beta0)
    byzantine_on_1 = GroupSpec(
        name="byzantine", weight=beta0, pattern=semi_active_even, byzantine=True
    )
    byzantine_on_2 = GroupSpec(
        name="byzantine", weight=beta0, pattern=semi_active_odd, byzantine=True
    )
    simulation = LeakSimulation(
        branch_specs={
            BRANCH_1: (h1_on_1, h2_on_1, byzantine_on_1),
            BRANCH_2: (h1_on_2, h2_on_2, byzantine_on_2),
        },
        config=config or SpecConfig.mainnet(),
    )
    result = simulation.run(max_epochs, stop_on_all_finalized=False)
    max_beta = max(
        branch.max_byzantine_proportion() for branch in result.branches.values()
    )
    exceeded = max_beta >= constants.BYZANTINE_SAFETY_THRESHOLD
    return ScenarioOutcome(
        scenario_id="5.2.3",
        description="Byzantine validators delay finalization to exceed one-third",
        p0=p0,
        beta0=beta0,
        outcome="beta > 1/3" if exceeded else "beta stays below 1/3",
        conflicting_finalization_epoch=result.conflicting_finalization_epoch(),
        max_byzantine_proportion=max_beta,
        threshold_exceeded=exceeded,
        analytical_epoch=None,
        simulation=result,
    )


# ----------------------------------------------------------------------
# Scenario 5.3 — probabilistic bouncing attack
# ----------------------------------------------------------------------
def run_bouncing_scenario(
    beta0: float,
    p0: float = 0.5,
    horizon_epochs: int = 4000,
    both_branches: bool = True,
) -> ScenarioOutcome:
    """Scenario 5.3: the probabilistic bouncing attack under the leak.

    The outcome is probabilistic: the scenario reports the probability that
    the Byzantine stake proportion exceeds one-third at the horizon epoch
    (Equation 24) together with the probability that the attack even lasts
    that long.
    """
    model = BouncingAttackModel(beta0=beta0, p0=p0)
    exceed_probability = model.exceed_threshold_probability(
        float(horizon_epochs), both_branches=both_branches
    )
    duration_log10 = model.log10_duration_probability(horizon_epochs)
    return ScenarioOutcome(
        scenario_id="5.3",
        description="Probabilistic bouncing attack with inactivity leak",
        p0=p0,
        beta0=beta0,
        outcome="beta > 1/3 probably",
        conflicting_finalization_epoch=None,
        max_byzantine_proportion=float("nan"),
        threshold_exceeded=exceed_probability > 0.5,
        analytical_epoch=None,
        details={
            "exceed_probability_at_horizon": exceed_probability,
            "log10_duration_probability": duration_log10,
            "feasible_p0_lower": model.feasible_p0_window()[0],
            "feasible_p0_upper": model.feasible_p0_window()[1],
        },
    )


# ----------------------------------------------------------------------
# Table 1 — the whole set
# ----------------------------------------------------------------------
def run_all_scenarios(
    beta0: float = 0.33,
    threshold_beta0: float = 0.25,
    p0: float = 0.5,
    max_epochs: int = 6000,
    config: Optional[SpecConfig] = None,
) -> List[ScenarioOutcome]:
    """Run the five Table-1 scenarios with representative parameters.

    ``beta0`` is used for the finalization-accelerating scenarios (the paper
    highlights 0.33); ``threshold_beta0`` for the threshold-exceeding
    scenario (any value above the 0.2421 bound works).
    """
    return [
        run_all_honest_scenario(p0=p0, max_epochs=max_epochs, config=config),
        run_slashable_byzantine_scenario(
            beta0=beta0, p0=p0, max_epochs=max_epochs, config=config
        ),
        run_non_slashable_byzantine_scenario(
            beta0=beta0, p0=p0, max_epochs=max_epochs, config=config
        ),
        run_threshold_exceeding_scenario(
            beta0=threshold_beta0, p0=p0, max_epochs=max(max_epochs, 8000), config=config
        ),
        run_bouncing_scenario(beta0=0.33, p0=p0),
    ]
