"""Stake distribution of honest validators under the bouncing attack.

Section 5.3 of the paper derives, from the random-walk model of the
inactivity score, the distribution of an honest validator's stake at epoch
``t`` of a probabilistic bouncing attack:

* Equation 18: the log-normal density ``P(s, t)``,
* Equation 19: its cumulative function ``F(s, t)`` (an erf),
* Equations 20–21: the *capped* law ``P̄(x, t)`` accounting for ejection at
  ``a = 16.75`` ETH (stake collapses to 0) and the 32-ETH cap,
* Equation 22: the capped cumulative ``F̄(x, t)``.

All of them are parameterised by ``D = 25 p0 (1-p0)`` and ``V = 3/2`` from
:mod:`repro.analysis.randomwalk`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import integrate

from repro import constants
from repro.analysis.randomwalk import diffusion_coefficient, drift_per_epoch


@dataclass(frozen=True)
class BouncingStakeDistribution:
    """The honest-validator stake law during a bouncing attack.

    Parameters
    ----------
    p0:
        Probability for an honest validator to land on the branch under
        consideration at each epoch (the paper's ``p0``).
    s0:
        Initial stake (32 ETH).
    ejection_balance:
        The ``a`` bound of Equation 20 (16.75 ETH): below it the stake
        collapses to zero (the validator is ejected).
    cap:
        The ``b`` bound of Equation 20 (32 ETH): the stake cannot exceed it.
    quotient:
        The ``2**26`` inactivity penalty quotient.
    """

    p0: float = 0.5
    s0: float = constants.MAX_EFFECTIVE_BALANCE_ETH
    ejection_balance: float = constants.EJECTION_BALANCE_ETH
    cap: float = constants.MAX_EFFECTIVE_BALANCE_ETH
    quotient: float = float(constants.INACTIVITY_PENALTY_QUOTIENT)

    def __post_init__(self) -> None:
        if not 0.0 < self.p0 < 1.0:
            raise ValueError("p0 must lie strictly between 0 and 1")
        if not 0.0 < self.ejection_balance < self.cap:
            raise ValueError("ejection_balance must lie strictly between 0 and the cap")

    # ------------------------------------------------------------------
    # Gaussian parameters of the integrated score
    # ------------------------------------------------------------------
    @property
    def diffusion(self) -> float:
        """The paper's ``D = 25 p0 (1 - p0)``."""
        return diffusion_coefficient(self.p0)

    @property
    def drift(self) -> float:
        """The paper's ``V = 3/2``."""
        return drift_per_epoch(self.p0)

    def _scale(self, t: float) -> float:
        """``sqrt((4/3) D t^3)``: the erf scale of Equation 19."""
        return math.sqrt(4.0 / 3.0 * self.diffusion * t ** 3)

    def _centred(self, s: float, t: float) -> float:
        """``2**26 ln(s / s0) + V t^2 / 2`` — the argument of Eqs. 18–19."""
        return self.quotient * math.log(s / self.s0) + self.drift * t * t / 2.0

    # ------------------------------------------------------------------
    # Equations 18 and 19: unbounded log-normal law
    # ------------------------------------------------------------------
    def pdf(self, s: float, t: float) -> float:
        """The log-normal density ``P(s, t)`` of Equation 18."""
        if t <= 0:
            raise ValueError("t must be positive")
        if s <= 0:
            return 0.0
        scale = self._scale(t)
        centred = self._centred(s, t)
        return (
            self.quotient
            / s
            * math.sqrt(1.0 / (math.pi * (4.0 / 3.0) * self.diffusion * t ** 3))
            * math.exp(-(centred ** 2) / (4.0 / 3.0 * self.diffusion * t ** 3))
        )

    def cdf(self, s: float, t: float) -> float:
        """The cumulative ``F(s, t)`` of Equation 19."""
        if t <= 0:
            raise ValueError("t must be positive")
        if s <= 0:
            return 0.0
        return 0.5 + 0.5 * math.erf(self._centred(s, t) / self._scale(t))

    def mean_stake(self, t: float) -> float:
        """Median of the log-normal law: ``s0 exp(-V t^2 / (2 * 2**26))``.

        This coincides with the deterministic semi-active trajectory
        ``s0 exp(-3 t^2 / 2**28)``, which is the paper's observation that
        "the mean of the log-normal distribution [is] equivalent to sB when
        t is not too big".
        """
        return self.s0 * math.exp(-self.drift * t * t / (2.0 * self.quotient))

    # ------------------------------------------------------------------
    # Equations 20–22: capped law with ejection and cap point masses
    # ------------------------------------------------------------------
    def ejection_mass(self, t: float) -> float:
        """Probability mass at stake 0 (validator ejected): ``F(a, t)``."""
        return self.cdf(self.ejection_balance, t)

    def cap_mass(self, t: float) -> float:
        """Probability mass at the 32-ETH cap: ``1 - F(b, t)``."""
        return 1.0 - self.cdf(self.cap, t)

    def capped_pdf(self, x: float, t: float) -> float:
        """Continuous part of the capped law ``P̄(x, t)`` (Equation 21).

        Only the absolutely-continuous part on ``(a, b)`` is returned; the
        Dirac masses at 0 and at the cap are exposed separately through
        :meth:`ejection_mass` and :meth:`cap_mass`.
        """
        if x <= self.ejection_balance or x >= self.cap:
            return 0.0
        return self.pdf(x, t)

    def capped_cdf(self, x: float, t: float) -> float:
        """The capped cumulative ``F̄(x, t)`` of Equation 22."""
        if t <= 0:
            raise ValueError("t must be positive")
        if x < 0:
            return 0.0
        a, b = self.ejection_balance, self.cap
        result = self.cdf(a, t)
        if x >= a:
            result += self.cdf(x, t) - self.cdf(a, t)
        if x >= b:
            result += 1.0 - self.cdf(x, t)
        return min(1.0, result)

    def total_mass(self, t: float, grid_points: int = 2001) -> float:
        """Numerically integrate the capped law; should be 1 (sanity check)."""
        a, b = self.ejection_balance, self.cap
        grid = np.linspace(a, b, grid_points)
        continuous = integrate.trapezoid([self.capped_pdf(float(x), t) for x in grid], grid)
        return self.ejection_mass(t) + self.cap_mass(t) + float(continuous)

    # ------------------------------------------------------------------
    # Sampling helpers (used by Figure 9 and the Monte-Carlo validations)
    # ------------------------------------------------------------------
    def density_series(
        self, t: float, grid_points: int = 400
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The Figure-9 series: the continuous density sampled on (a, b)."""
        grid = np.linspace(self.ejection_balance, self.cap, grid_points)
        densities = np.array([self.capped_pdf(float(x), t) for x in grid])
        return grid, densities

    def quantile(self, q: float, t: float, tolerance: float = 1e-9) -> float:
        """Inverse of the *uncapped* CDF by bisection (monotone in s)."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must lie strictly between 0 and 1")
        low, high = 1e-12, self.s0 * 2.0
        while self.cdf(high, t) < q:
            high *= 2.0
        for _ in range(200):
            mid = 0.5 * (low + high)
            if self.cdf(mid, t) < q:
                low = mid
            else:
                high = mid
            if high - low < tolerance:
                break
        return 0.5 * (low + high)
