"""Seeded, chunked, optionally-parallel trial execution.

Monte-Carlo experiments run many independent seeded trials; this module
gives them one execution engine with two guarantees:

* **Determinism** — every chunk of trials receives a child
  :class:`numpy.random.SeedSequence` spawned from the root seed, and the
  chunk plan depends only on ``(n_trials, chunk_size)``.  Results are
  therefore identical whatever ``jobs`` is: a parallel run equals a serial
  run bit for bit (the regression tests assert this).
* **Throughput** — chunks are dispatched to a ``ProcessPoolExecutor`` when
  ``jobs`` asks for more than one worker, and workers receive whole chunks
  so the vectorized backends can batch every trial of a chunk into one
  array program.

``run_chunk_groups`` stacks contiguous chunks into larger kernel batches
without touching the chunk plan, so batching is a pure throughput knob:
results are independent of ``batch`` as well as ``jobs``.

``run_task_chunks`` is the task-generic sibling: it chunks an arbitrary
list of *task descriptions* (grid points, scenario/trial pairs, …) with
the same contiguous, order-preserving plan and dispatches whole chunks to
workers.  Tasks that carry their own determinism (a seed derived from the
task content, as the slot-sim sweeps do) are jobs- and chunk-size-
invariant by construction.  ``parallel_map`` is the per-item sibling used
by deterministic closed-form grid sweeps.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: Default number of trials per chunk.  Fixed (never derived from ``jobs``)
#: so the chunk plan — and therefore every seeded result — is independent
#: of the parallelism level.
DEFAULT_CHUNK_SIZE = 64


class DispatchCancelled(RuntimeError):
    """A chunked dispatch was cancelled before every unit completed.

    Raised by the dispatch core when a ``cancel`` predicate turns true.
    Units already delivered through ``on_unit_done`` are final — the
    experiment service persists each one as it arrives, so cancellation
    (graceful shutdown, job timeout) loses at most the in-flight units.
    """


@dataclass(frozen=True)
class TrialChunk:
    """A contiguous block of trial indices plus its spawned seed."""

    start: int
    size: int
    seed: np.random.SeedSequence

    @property
    def stop(self) -> int:
        return self.start + self.size

    def rng(self) -> np.random.Generator:
        """A fresh generator for this chunk's seed."""
        return np.random.default_rng(self.seed)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/1 serial, <=0 all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def plan_chunks(
    n_trials: int, seed: int = 0, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> List[TrialChunk]:
    """Split ``n_trials`` into seeded chunks of at most ``chunk_size``.

    The plan is a pure function of ``(n_trials, seed, chunk_size)``.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    starts = list(range(0, n_trials, chunk_size))
    children = np.random.SeedSequence(seed).spawn(len(starts))
    return [
        TrialChunk(start=start, size=min(chunk_size, n_trials - start), seed=child)
        for start, child in zip(starts, children)
    ]


def _run_chunk_worker(
    worker: Callable[..., Sequence[Any]], chunk: TrialChunk, args: Tuple[Any, ...]
) -> List[Any]:
    results = list(worker(chunk, *args))
    if len(results) != chunk.size:
        raise ValueError(
            f"chunk worker returned {len(results)} results for {chunk.size} trials"
        )
    return results


def _dispatch_units(
    unit_runner: Callable[..., List[Any]],
    worker: Callable[..., Sequence[Any]],
    units: Sequence[Any],
    worker_args: Tuple[Any, ...],
    jobs: Optional[int],
    on_unit_done: Optional[Callable[[int, List[Any]], None]] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> List[Any]:
    """Run ``unit_runner(worker, unit, worker_args)`` for every unit; flatten.

    The shared dispatch core behind every chunked runner in this module:
    serial below two workers, a ``ProcessPoolExecutor`` otherwise, always
    flattening per-unit result lists in submission order — so the output
    never depends on ``jobs``.

    ``on_unit_done(index, results)`` is called once per unit, in plan
    order, as soon as the unit's results are available — the observation
    hook the experiment service uses to persist per-trial results and
    stream progress.  ``cancel()`` is polled between units; when it turns
    true the dispatch raises :class:`DispatchCancelled` (pending pool
    futures are cancelled; units already observed are final).
    """
    n_workers = min(resolve_jobs(jobs), len(units))
    per_unit: List[List[Any]] = []
    if n_workers <= 1:
        for index, unit in enumerate(units):
            if cancel is not None and cancel():
                raise DispatchCancelled(
                    f"dispatch cancelled after {index} of {len(units)} units"
                )
            results = unit_runner(worker, unit, worker_args)
            if on_unit_done is not None:
                on_unit_done(index, results)
            per_unit.append(results)
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(unit_runner, worker, unit, worker_args) for unit in units
            ]
            try:
                for index, future in enumerate(futures):
                    if cancel is not None and cancel():
                        raise DispatchCancelled(
                            f"dispatch cancelled after {index} of {len(units)} units"
                        )
                    results = future.result()
                    if on_unit_done is not None:
                        on_unit_done(index, results)
                    per_unit.append(results)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
    return [result for unit_results in per_unit for result in unit_results]


def run_chunked(
    worker: Callable[..., Sequence[Any]],
    n_trials: int,
    *,
    seed: int = 0,
    jobs: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    worker_args: Tuple[Any, ...] = (),
) -> List[Any]:
    """Run ``worker(chunk, *worker_args)`` over every chunk; flatten in order.

    ``worker`` must return one result per trial in the chunk and — when
    ``jobs`` > 1 — must be picklable (a module-level function or a method
    of a picklable object).
    """
    chunks = plan_chunks(n_trials, seed=seed, chunk_size=chunk_size)
    return _dispatch_units(_run_chunk_worker, worker, chunks, worker_args, jobs)


def group_chunks(
    chunks: Sequence[TrialChunk], batch: int
) -> List[List[TrialChunk]]:
    """Group contiguous chunks so each group holds at most ``batch`` trials.

    Grouping never splits a chunk and never reorders: each group is a run
    of consecutive chunks whose combined size fits ``batch`` (a single
    oversized chunk still forms its own group).  Because the chunk plan —
    and with it every per-chunk seed — is untouched, a worker that draws
    from each chunk's own generator produces the same per-trial streams
    whatever ``batch`` is; grouping only widens the kernel batch.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    groups: List[List[TrialChunk]] = []
    current: List[TrialChunk] = []
    current_size = 0
    for chunk in chunks:
        if current and current_size + chunk.size > batch:
            groups.append(current)
            current = []
            current_size = 0
        current.append(chunk)
        current_size += chunk.size
    if current:
        groups.append(current)
    return groups


def _run_group_worker(
    worker: Callable[..., Sequence[Any]],
    group: Sequence[TrialChunk],
    args: Tuple[Any, ...],
) -> List[Any]:
    results = list(worker(group, *args))
    expected = sum(chunk.size for chunk in group)
    if len(results) != expected:
        raise ValueError(
            f"group worker returned {len(results)} results for {expected} trials"
        )
    return results


def run_chunk_groups(
    worker: Callable[..., Sequence[Any]],
    n_trials: int,
    *,
    seed: int = 0,
    jobs: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    batch: Optional[int] = None,
    worker_args: Tuple[Any, ...] = (),
) -> List[Any]:
    """Run ``worker(chunks, *worker_args)`` over groups of seeded chunks.

    The trial-batched sibling of :func:`run_chunked`: the chunk plan (and
    every per-chunk seed) is still a pure function of ``(n_trials, seed,
    chunk_size)``, but workers receive whole *groups* of contiguous chunks
    — up to ``batch`` trials each, default one group per dispatch of
    everything — so a vectorized engine can advance all of a group's
    trials per kernel call.  ``worker`` must return one result per trial,
    in trial order across its chunks.  Results are identical whatever
    ``jobs`` and ``batch`` are (asserted by the trials tests).
    """
    chunks = plan_chunks(n_trials, seed=seed, chunk_size=chunk_size)
    groups = group_chunks(chunks, batch if batch is not None else n_trials)
    return _dispatch_units(_run_group_worker, worker, groups, worker_args, jobs)


# ----------------------------------------------------------------------
# Task-generic chunked execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskChunk:
    """A contiguous block of task descriptions plus its position.

    The task-generic counterpart of :class:`TrialChunk`: instead of a
    spawned seed it carries the tasks themselves — whatever picklable
    descriptions the caller enumerated (grid points, ``(scenario, trial)``
    pairs, …).  Workers that derive all randomness from the task content
    are deterministic whatever the chunking.
    """

    start: int
    tasks: Tuple[Any, ...]

    @property
    def size(self) -> int:
        return len(self.tasks)

    @property
    def stop(self) -> int:
        return self.start + len(self.tasks)


def plan_task_chunks(
    tasks: Sequence[Any], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> List[TaskChunk]:
    """Split ``tasks`` into contiguous chunks of at most ``chunk_size``.

    The plan is a pure function of ``(tasks, chunk_size)`` — order is
    preserved and nothing is dropped or duplicated.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    tasks = list(tasks)
    return [
        TaskChunk(start=start, tasks=tuple(tasks[start : start + chunk_size]))
        for start in range(0, len(tasks), chunk_size)
    ]


def _run_task_chunk_worker(
    worker: Callable[..., Sequence[Any]], chunk: TaskChunk, args: Tuple[Any, ...]
) -> List[Any]:
    results = list(worker(chunk, *args))
    if len(results) != chunk.size:
        raise ValueError(
            f"task worker returned {len(results)} results for {chunk.size} tasks"
        )
    return results


def run_task_chunks(
    worker: Callable[..., Sequence[Any]],
    tasks: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    worker_args: Tuple[Any, ...] = (),
    on_chunk_done: Optional[Callable[[TaskChunk, List[Any]], None]] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> List[Any]:
    """Run ``worker(chunk, *worker_args)`` over chunks of ``tasks``; flatten.

    The task-generic chunked ProcessPool runner: ``worker`` receives a
    :class:`TaskChunk` and must return one result per task, in task order.
    Results come back in the original task order and are independent of
    ``jobs`` (chunks are dispatched whole and flattened in plan order);
    they are also independent of ``chunk_size`` whenever the worker is a
    pure function of each task.  When ``jobs`` > 1 the worker and every
    task must be picklable.

    ``on_chunk_done(chunk, results)`` fires once per chunk in plan order
    as results arrive (so callers can persist/stream incrementally);
    ``cancel()`` is polled between chunks and aborts the dispatch with
    :class:`DispatchCancelled` — chunks already observed are final.
    """
    chunks = plan_task_chunks(tasks, chunk_size=chunk_size)
    on_unit_done = None
    if on_chunk_done is not None:
        on_unit_done = lambda index, results: on_chunk_done(chunks[index], results)
    return _dispatch_units(
        _run_task_chunk_worker,
        worker,
        chunks,
        worker_args,
        jobs,
        on_unit_done=on_unit_done,
        cancel=cancel,
    )


class _PerTrialWorker:
    """Adapts a per-trial function to the chunk interface (picklable).

    Trial ``i`` always draws from ``SeedSequence(seed, spawn_key=(i,))`` —
    the same child :meth:`~numpy.random.SeedSequence.spawn` would produce —
    so per-trial streams are independent of the chunking as well.
    """

    def __init__(self, trial_fn: Callable[..., Any], seed: int) -> None:
        self.trial_fn = trial_fn
        self.seed = seed

    def __call__(self, chunk: TrialChunk, *args: Any) -> List[Any]:
        return [
            self.trial_fn(
                index,
                np.random.default_rng(
                    np.random.SeedSequence(self.seed, spawn_key=(index,))
                ),
                *args,
            )
            for index in range(chunk.start, chunk.stop)
        ]


def run_trials(
    trial_fn: Callable[..., Any],
    n_trials: int,
    *,
    seed: int = 0,
    jobs: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    trial_args: Tuple[Any, ...] = (),
) -> List[Any]:
    """Run ``trial_fn(trial_index, rng, *trial_args)`` for every trial.

    Each trial gets its own deterministically-spawned generator, so the
    result list is independent of both ``jobs`` and ``chunk_size``
    (chunking only groups work for dispatch).
    """
    return run_chunked(
        _PerTrialWorker(trial_fn, seed),
        n_trials,
        seed=seed,
        jobs=jobs,
        chunk_size=chunk_size,
        worker_args=trial_args,
    )


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Order-preserving map, optionally across processes.

    For deterministic work (no RNG) such as closed-form grid sweeps.  With
    ``jobs`` <= 1 this is a plain ``map``; results never depend on ``jobs``.
    """
    items = list(items)
    n_workers = resolve_jobs(jobs)
    if n_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if chunk_size is None:
        chunk_size = max(1, len(items) // (4 * n_workers))
    with ProcessPoolExecutor(max_workers=min(n_workers, len(items))) as pool:
        return list(pool.map(fn, items, chunksize=chunk_size))
