"""Pluggable backends for the discrete stake-dynamics epoch update.

This module is the single implementation of the paper's per-epoch stake
forces, operating on flat arrays over an arbitrary population of validators
(or validator groups): Equations 1 and 2 (inactivity scores and penalties)
with the score floor at zero and the 16.75-ETH ejection rule
(:meth:`StakeBackend.epoch_update`), the attestation rewards/penalties of
incentive type ii (:meth:`StakeBackend.attestation_rewards_epoch_update`),
slashing with its ejection ordering
(:meth:`StakeBackend.slashing_epoch_update`) and Casper FFG
justification/finalization over flat checkpoint-vote arrays
(:meth:`StakeBackend.finality_epoch_update`).  Everything that used to
re-implement these rules — the group-ledger leak simulator
(:mod:`repro.leak.dynamics`), the per-validator Monte-Carlo bouncing
simulation (:mod:`repro.analysis.montecarlo`) and the per-node epoch
processing behind :mod:`repro.sim` (:mod:`repro.spec.inactivity`,
:mod:`repro.spec.rewards`, :mod:`repro.spec.slashing`) — delegates here.

Two backends are always available:

``"numpy"``
    The fast path: vectorized element-wise updates over the whole
    population at once.  Arrays may have any shape (the Monte-Carlo layer
    batches ``(trials, validators)`` matrices through it).

``"python"``
    A pure-Python reference that applies the identical arithmetic one
    element at a time.  Because both backends perform the same IEEE-754
    double operations in the same order per element, their trajectories are
    bit-identical — which the equivalence tests assert, and which makes the
    loop backend a trustworthy semantics oracle for the vectorized one.

A third, *optional* backend is registered lazily when its dependency
imports (see :func:`available_backends`):

``"numba"``
    JIT-compiled fused epoch kernels (:mod:`repro.core.backend_numba`),
    pinned bit-identical to the numpy path by the same equivalence suites.
    Requesting it without ``numba`` installed raises a :class:`ValueError`
    naming the missing extra.

The leak flag of the stake-dynamics and reward kernels may be a scalar
bool or a *per-trial* array: a mask of shape ``(trials,)`` (or any prefix
of the state shape) broadcast across the validator axes, so batched
``(trials, validators)`` sweeps can mix in-leak and out-of-leak trials in
one kernel call.  Masked updates are defined element-wise as "the scalar
in-leak update where the mask is set, the scalar no-leak update elsewhere",
so they are bit-identical to running each trial separately.

The epoch update is decomposed into three stages executed in protocol
order (penalties from carried-over scores, score updates from this epoch's
activity, ejections), mirroring Equation 2's ``I(t-1) * s(t-1) / 2**26``
indexing.  Ejected validators are frozen: their stake and score stop
evolving and they can never be re-ejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core is below spec)
    from repro.spec.config import SpecConfig


@dataclass(frozen=True)
class StakeRules:
    """The protocol parameters consumed by the epoch-update kernel."""

    score_bias: float
    score_recovery: float
    score_recovery_no_leak: float
    penalty_quotient: float
    ejection_balance: float

    @classmethod
    def from_config(cls, config: "Optional[SpecConfig]" = None) -> "StakeRules":
        """Extract the kernel parameters from a :class:`SpecConfig`."""
        from repro.spec.config import SpecConfig

        cfg = config or SpecConfig.mainnet()
        return cls(
            score_bias=float(cfg.inactivity_score_bias),
            score_recovery=float(cfg.inactivity_score_recovery),
            score_recovery_no_leak=float(cfg.inactivity_score_recovery_no_leak),
            penalty_quotient=float(cfg.inactivity_penalty_quotient),
            ejection_balance=float(cfg.ejection_balance),
        )


@dataclass(frozen=True)
class RewardRules:
    """Parameters of the attestation reward/penalty kernel (Section 3.3)."""

    base_reward_fraction: float
    attestation_penalty_fraction: float
    max_effective_balance: float

    @classmethod
    def from_config(cls, config: "Optional[SpecConfig]" = None) -> "RewardRules":
        """Extract the kernel parameters from a :class:`SpecConfig`."""
        from repro.spec.config import SpecConfig

        cfg = config or SpecConfig.mainnet()
        return cls(
            base_reward_fraction=float(cfg.base_reward_fraction),
            attestation_penalty_fraction=float(cfg.attestation_penalty_fraction),
            max_effective_balance=float(cfg.max_effective_balance),
        )


@dataclass(frozen=True)
class SlashingRules:
    """Parameters of the slashing kernel (Section 5.2.1)."""

    penalty_fraction: float

    @classmethod
    def from_config(cls, config: "Optional[SpecConfig]" = None) -> "SlashingRules":
        """Extract the kernel parameters from a :class:`SpecConfig`."""
        from repro.spec.config import SpecConfig

        cfg = config or SpecConfig.mainnet()
        return cls(penalty_fraction=float(cfg.min_slashing_penalty_fraction))


@dataclass(frozen=True)
class FinalityRules:
    """Parameters of the FFG justification/finalization kernel (Section 3.2)."""

    supermajority_fraction: float

    @classmethod
    def from_config(cls, config: "Optional[SpecConfig]" = None) -> "FinalityRules":
        """Extract the kernel parameters from a :class:`SpecConfig`."""
        from repro.spec.config import SpecConfig

        cfg = config or SpecConfig.mainnet()
        return cls(supermajority_fraction=float(cfg.supermajority_fraction))


@dataclass
class EpochOutcome:
    """Result of one fused epoch update."""

    stakes: np.ndarray
    scores: np.ndarray
    ejected: np.ndarray
    #: Mask of validators ejected by *this* update.
    newly_ejected: np.ndarray
    #: Total stake burned by inactivity penalties this epoch.
    total_penalty: float


@dataclass
class RewardOutcome:
    """Result of one epoch of attestation reward/penalty processing."""

    stakes: np.ndarray
    #: Mask of validators credited a non-zero reward this epoch.
    rewarded: np.ndarray
    #: Mask of validators charged a non-zero attestation penalty this epoch.
    penalized: np.ndarray
    total_rewards: float
    total_penalties: float


@dataclass
class SlashingEpochOutcome:
    """Result of one epoch of slashing processing."""

    stakes: np.ndarray
    #: Slashed flags after the update.
    slashed: np.ndarray
    #: Mask of validators slashed by *this* update.
    newly_slashed: np.ndarray
    #: Total stake burned by slashing penalties this epoch.
    total_penalty: float


@dataclass(frozen=True)
class FinalityEvent:
    """One justification recorded by the finality kernel, in event order.

    ``finalizes_source`` is set when the justification also finalized its
    source (consecutive-epochs rule); roots are the caller's interned ids.
    """

    target_epoch: int
    target_root: int
    source_epoch: int
    source_root: int
    finalizes_source: bool


@dataclass
class FinalityUpdate:
    """Result of one epoch of FFG justification/finalization processing."""

    #: Justifications in the order the decision loop recorded them.
    events: List[FinalityEvent] = field(default_factory=list)
    #: ``(source_epoch, source_root, target_root)`` -> supporting stake of
    #: eligible voters, for every link present in the epoch's votes.
    link_supports: Dict[Tuple[int, int, int], float] = field(default_factory=dict)

    @property
    def justified(self) -> List[Tuple[int, int]]:
        """Newly justified ``(epoch, root_id)`` checkpoints, in order."""
        return [(event.target_epoch, event.target_root) for event in self.events]

    @property
    def finalized(self) -> List[Tuple[int, int]]:
        """Newly finalized ``(epoch, root_id)`` checkpoints, in order."""
        return [
            (event.source_epoch, event.source_root)
            for event in self.events
            if event.finalizes_source
        ]


#: The leak flag accepted by the kernels: a scalar bool or a per-trial mask.
LeakFlag = Union[bool, np.bool_, np.ndarray, Sequence[bool]]


def leak_mask(in_leak: LeakFlag, shape: Tuple[int, ...]) -> Optional[np.ndarray]:
    """Normalise a kernel leak flag against a state shape.

    Returns ``None`` for scalar flags (the fast path: the caller keeps its
    scalar branch).  Array flags must match a leading prefix of ``shape``
    — typically ``(trials,)`` against ``(trials, validators)`` — and are
    broadcast to the full state shape.
    """
    if isinstance(in_leak, (bool, np.bool_)):
        return None
    mask = np.asarray(in_leak, dtype=bool)
    if mask.ndim == 0:
        return None
    if mask.shape != shape[: mask.ndim]:
        raise ValueError(
            f"in_leak mask of shape {mask.shape} must match a leading prefix "
            f"of the state shape {shape}"
        )
    return np.broadcast_to(
        mask.reshape(mask.shape + (1,) * (len(shape) - mask.ndim)), shape
    )


class StakeBackend:
    """Interface of an epoch-update backend.

    Subclasses implement the three stages; :meth:`epoch_update` composes
    them in protocol order and is shared so both backends agree on the
    sequencing by construction.
    """

    name: str = "abstract"
    #: When False, :meth:`apply_penalties` reports a total of 0.0 instead of
    #: summing the burned stake — hot loops that never read the total (the
    #: Monte-Carlo batches) flip this off to skip two reductions per epoch.
    #: The stake/score/ejection trajectories are unaffected.
    track_penalty_totals: bool = True

    def clone(self) -> "StakeBackend":
        """A fresh instance of this backend with the same settings.

        Call sites that flip :attr:`track_penalty_totals` must clone first
        so a caller-supplied shared instance is never mutated.
        """
        other = type(self)()
        other.track_penalty_totals = self.track_penalty_totals
        return other

    # -- stages --------------------------------------------------------
    def apply_penalties(
        self,
        stakes: np.ndarray,
        scores: np.ndarray,
        ejected: np.ndarray,
        rules: StakeRules,
    ) -> Tuple[np.ndarray, float]:
        """Equation 2: charge ``score * stake / quotient`` to live validators.

        Returns the new stakes and the total amount actually burned (the
        penalty is floored so the stake never goes negative).
        """
        raise NotImplementedError

    def update_scores(
        self,
        scores: np.ndarray,
        active: np.ndarray,
        ejected: np.ndarray,
        rules: StakeRules,
        in_leak: bool,
    ) -> np.ndarray:
        """Equation 1: bias up inactive scores, recover active ones (floored).

        Outside a leak every live score additionally recovers by
        ``score_recovery_no_leak``.
        """
        raise NotImplementedError

    def find_ejections(
        self, stakes: np.ndarray, ejected: np.ndarray, rules: StakeRules
    ) -> np.ndarray:
        """Mask of live validators whose stake fell to/below the ejection balance."""
        raise NotImplementedError

    def attestation_rewards_epoch_update(
        self,
        stakes: np.ndarray,
        active: np.ndarray,
        ineligible: np.ndarray,
        rules: RewardRules,
        in_leak: bool,
    ) -> RewardOutcome:
        """One epoch of attestation rewards/penalties (incentive type ii).

        Eligible (not ``ineligible``) validators in ``active`` earn the base
        reward ``stake * base_reward_fraction`` capped at the maximum
        effective balance — except during a leak, when no attester rewards
        are paid.  Eligible validators *not* in ``active`` are charged
        ``stake * attestation_penalty_fraction`` (floored so the stake never
        goes negative), leak or not.  The rewarded/penalized masks record
        only non-zero credits/deductions.  ``in_leak`` may be a per-trial
        mask (see :func:`leak_mask`) gating the reward path per element.
        """
        raise NotImplementedError

    def slashing_epoch_update(
        self,
        stakes: np.ndarray,
        slashable: np.ndarray,
        slashed: np.ndarray,
        ineligible: np.ndarray,
        rules: SlashingRules,
    ) -> SlashingEpochOutcome:
        """One epoch of slashing: charge the penalty and flag the offender.

        A validator in ``slashable`` is slashed only if it is neither
        already ``slashed`` nor ``ineligible`` (already out of the active
        set — an ejected validator cannot be charged after leaving, see the
        ejection ordering in :meth:`epoch_update`).  Newly slashed
        validators lose ``stake * penalty_fraction`` (floored at the stake);
        exit scheduling is the caller's responsibility via the
        ``newly_slashed`` mask.
        """
        raise NotImplementedError

    def ffg_link_supports(
        self,
        vote_validators: np.ndarray,
        vote_source_epochs: np.ndarray,
        vote_source_roots: np.ndarray,
        vote_target_roots: np.ndarray,
        stakes: np.ndarray,
        eligible: np.ndarray,
    ) -> Dict[Tuple[int, int, int], float]:
        """Stake supporting each distinct supermajority link of one epoch.

        The four vote arrays are parallel, one row per voting validator
        (the caller — :class:`repro.core.ffg.FlatVotePool` — guarantees at
        most one row per validator); roots are interned integer ids.  The
        support of a link is the sum of ``stakes`` over its voters that
        are ``eligible`` (active at the processed epoch), accumulated *in
        increasing validator order* — both backends perform that exact
        IEEE-754 summation, so supports are bit-identical to each other
        and to the per-validator dict scan this kernel replaced.  Links
        whose voters are all ineligible are still reported, with support
        0.0.
        """
        raise NotImplementedError

    def finality_epoch_update(
        self,
        vote_validators: np.ndarray,
        vote_source_epochs: np.ndarray,
        vote_source_roots: np.ndarray,
        vote_target_roots: np.ndarray,
        stakes: np.ndarray,
        eligible: np.ndarray,
        rules: FinalityRules,
        epoch: int,
        total_stake: float,
        justified_roots: Mapping[int, int],
        finalized_epoch: int,
        root_rank: "Optional[Sequence[int]]" = None,
    ) -> FinalityUpdate:
        """One epoch of Casper FFG justification/finalization (Section 3.2).

        Link supports come from :meth:`ffg_link_supports` (the per-backend
        stage); the decision cascade below is shared, so both backends
        agree on the sequencing by construction.  Targets are visited in
        checkpoint order (by ``root_rank``; pass ``None`` when ids are
        already rank-ordered), and for each target the justified sources
        — ``justified_roots`` maps epoch to the justified checkpoint's
        root id — are tried in checkpoint order until one link clears the
        strict supermajority of ``total_stake``.  A justification at
        ``source epoch + 1`` whose source lies beyond ``finalized_epoch``
        finalizes that source (two consecutive justified checkpoints).
        Justifications recorded mid-loop are visible to later targets of
        the same call, mirroring the state-mutating loop this replaces.
        """
        supports = self.ffg_link_supports(
            vote_validators,
            vote_source_epochs,
            vote_source_roots,
            vote_target_roots,
            stakes,
            eligible,
        )
        update = FinalityUpdate(link_supports=supports)
        if not supports:
            return update

        if root_rank is None:
            def rank(root_id: int) -> int:
                return root_id
        else:
            def rank(root_id: int) -> int:
                return int(root_rank[root_id])

        justified_map = dict(justified_roots)
        last_finalized = int(finalized_epoch)
        epoch = int(epoch)
        for target_root in sorted({key[2] for key in supports}, key=rank):
            if justified_map.get(epoch) == target_root:
                continue
            sources = sorted(
                {(key[0], key[1]) for key in supports if key[2] == target_root},
                key=lambda source: (source[0], rank(source[1])),
            )
            for source_epoch, source_root in sources:
                if justified_map.get(source_epoch) != source_root:
                    continue
                support = supports[(source_epoch, source_root, target_root)]
                if total_stake <= 0 or not (
                    support / total_stake > rules.supermajority_fraction
                ):
                    continue
                justified_map[epoch] = target_root
                finalizes = (
                    epoch == source_epoch + 1 and source_epoch > last_finalized
                )
                if finalizes:
                    last_finalized = source_epoch
                update.events.append(
                    FinalityEvent(
                        target_epoch=epoch,
                        target_root=target_root,
                        source_epoch=source_epoch,
                        source_root=source_root,
                        finalizes_source=finalizes,
                    )
                )
                break
        return update

    # -- fused step ----------------------------------------------------
    def epoch_update(
        self,
        stakes: np.ndarray,
        scores: np.ndarray,
        active: np.ndarray,
        ejected: np.ndarray,
        rules: StakeRules,
        in_leak: LeakFlag = True,
    ) -> EpochOutcome:
        """One epoch of stake dynamics in protocol order.

        1. Penalties from the scores/stakes carried into the epoch (only
           during a leak).
        2. Score updates from this epoch's activity.
        3. Ejection of live validators at/below the ejection balance.

        ``in_leak`` may be a per-trial mask (see :func:`leak_mask`): each
        element then follows the in-leak or no-leak scalar update according
        to its trial's flag, bit-identically to stepping the trials one by
        one with scalar flags.
        """
        leak = leak_mask(in_leak, np.shape(stakes))
        if leak is not None:
            return self._epoch_update_masked(
                stakes, scores, active, ejected, rules, leak
            )
        if in_leak:
            stakes, total_penalty = self.apply_penalties(stakes, scores, ejected, rules)
        else:
            stakes, total_penalty = np.array(stakes, dtype=float, copy=True), 0.0
        scores = self.update_scores(scores, active, ejected, rules, in_leak)
        newly_ejected = self.find_ejections(stakes, ejected, rules)
        ejected = np.logical_or(ejected, newly_ejected)
        return EpochOutcome(
            stakes=stakes,
            scores=scores,
            ejected=ejected,
            newly_ejected=newly_ejected,
            total_penalty=total_penalty,
        )

    def _epoch_update_masked(
        self,
        stakes: np.ndarray,
        scores: np.ndarray,
        active: np.ndarray,
        ejected: np.ndarray,
        rules: StakeRules,
        leak: np.ndarray,
    ) -> EpochOutcome:
        """The per-trial-leak composition, shared by every backend.

        Both scalar variants of each leak-dependent stage are evaluated and
        stitched element-wise by the mask, so each element's arithmetic is
        exactly the scalar path its flag selects.
        """
        old_stakes = np.asarray(stakes, dtype=float)
        leaked_stakes, _ = self.apply_penalties(stakes, scores, ejected, rules)
        new_stakes = np.where(leak, leaked_stakes, old_stakes)
        if self.track_penalty_totals:
            total_penalty = float(np.sum(old_stakes) - np.sum(new_stakes))
        else:
            total_penalty = 0.0
        new_scores = np.where(
            leak,
            self.update_scores(scores, active, ejected, rules, True),
            self.update_scores(scores, active, ejected, rules, False),
        )
        newly_ejected = self.find_ejections(new_stakes, ejected, rules)
        ejected = np.logical_or(ejected, newly_ejected)
        return EpochOutcome(
            stakes=new_stakes,
            scores=new_scores,
            ejected=ejected,
            newly_ejected=newly_ejected,
            total_penalty=total_penalty,
        )


class NumpyBackend(StakeBackend):
    """Vectorized epoch updates over the whole population at once."""

    name = "numpy"

    def apply_penalties(self, stakes, scores, ejected, rules):
        stakes = np.asarray(stakes, dtype=float)
        ejected = np.asarray(ejected, dtype=bool)
        # Per element this is exactly max(0.0, stake - score*stake/quotient),
        # with in-place ops to keep large batched updates allocation-light.
        penalised = np.asarray(scores, dtype=float) * stakes
        penalised /= rules.penalty_quotient
        np.subtract(stakes, penalised, out=penalised)
        np.maximum(penalised, 0.0, out=penalised)
        np.copyto(penalised, stakes, where=ejected)
        if not self.track_penalty_totals:
            return penalised, 0.0
        return penalised, float(np.sum(stakes) - np.sum(penalised))

    def update_scores(self, scores, active, ejected, rules, in_leak):
        scores = np.asarray(scores, dtype=float)
        # Build score - recovery (active) / score + bias (inactive) from a
        # 0/1 selector: multiplying the exact scalars by 0.0 or 1.0 and
        # adding keeps every element bit-identical to the loop reference
        # while avoiding np.where's much slower scalar broadcast.  The
        # global floor matches max(0, score - recovery) on the active side
        # and is a no-op on the inactive side because scores are
        # non-negative (Equation 1 floors at zero every epoch).
        selector = np.asarray(active, dtype=float)
        updated = selector * (-rules.score_recovery)
        updated += scores
        np.subtract(1.0, selector, out=selector)
        selector *= rules.score_bias
        updated += selector
        np.maximum(updated, 0.0, out=updated)
        if not in_leak:
            updated -= rules.score_recovery_no_leak
            np.maximum(updated, 0.0, out=updated)
        np.copyto(updated, scores, where=np.asarray(ejected, dtype=bool))
        return updated

    def find_ejections(self, stakes, ejected, rules):
        newly = np.asarray(stakes, dtype=float) <= rules.ejection_balance
        newly &= ~np.asarray(ejected, dtype=bool)
        return newly

    def attestation_rewards_epoch_update(self, stakes, active, ineligible, rules, in_leak):
        stakes = np.asarray(stakes, dtype=float)
        active = np.asarray(active, dtype=bool)
        eligible = ~np.asarray(ineligible, dtype=bool)
        leak = leak_mask(in_leak, stakes.shape)
        reward_mask = eligible & active
        if leak is not None:
            reward_mask = reward_mask & ~leak
        penalty_mask = eligible & ~active
        new_stakes = stakes.copy()
        # Per element the reward path is min(stake + stake*fraction, cap);
        # the capped value is written back directly (never stake + credited,
        # which would not round-trip bit-exactly through the subtraction).
        if leak is None and in_leak:
            credited = np.zeros_like(stakes)
        else:
            grown = stakes * rules.base_reward_fraction
            grown += stakes
            np.minimum(grown, rules.max_effective_balance, out=grown)
            np.copyto(new_stakes, grown, where=reward_mask)
            credited = np.where(reward_mask, grown - stakes, 0.0)
        # Penalty path: min(stake, stake*fraction) deducted; masks are
        # disjoint so one fused subtraction (0.0 elsewhere) is exact.
        deducted = stakes * rules.attestation_penalty_fraction
        np.minimum(deducted, stakes, out=deducted)
        deducted = np.where(penalty_mask, deducted, 0.0)
        np.subtract(new_stakes, deducted, out=new_stakes)
        return RewardOutcome(
            stakes=new_stakes,
            rewarded=reward_mask & (credited > 0.0),
            penalized=penalty_mask & (deducted > 0.0),
            total_rewards=float(np.sum(credited)),
            total_penalties=float(np.sum(deducted)),
        )

    def slashing_epoch_update(self, stakes, slashable, slashed, ineligible, rules):
        stakes = np.asarray(stakes, dtype=float)
        slashed = np.asarray(slashed, dtype=bool)
        newly = np.asarray(slashable, dtype=bool) & ~slashed
        newly &= ~np.asarray(ineligible, dtype=bool)
        penalty = stakes * rules.penalty_fraction
        np.minimum(penalty, stakes, out=penalty)
        deducted = np.where(newly, penalty, 0.0)
        return SlashingEpochOutcome(
            stakes=stakes - deducted,
            slashed=slashed | newly,
            newly_slashed=newly,
            total_penalty=float(np.sum(deducted)),
        )

    def ffg_link_supports(
        self,
        vote_validators,
        vote_source_epochs,
        vote_source_roots,
        vote_target_roots,
        stakes,
        eligible,
    ):
        validators = np.asarray(vote_validators, dtype=np.int64)
        if validators.size == 0:
            return {}
        source_epochs = np.asarray(vote_source_epochs, dtype=np.int64)
        source_roots = np.asarray(vote_source_roots, dtype=np.int64)
        target_roots = np.asarray(vote_target_roots, dtype=np.int64)
        stakes = np.asarray(stakes, dtype=float)
        eligible = np.asarray(eligible, dtype=bool)
        # Group votes by link with voters ascending within each link;
        # bincount then accumulates each link's stake strictly left to
        # right, i.e. the same sequential sum over sorted voters as the
        # loop reference (np.sum's pairwise blocking would not be
        # bit-identical here).  Ineligible voters contribute exactly
        # +0.0, which never perturbs the non-negative partial sums.
        #
        # Fast path: epochs, interned root ids and validator indices are
        # small dense non-negative ints, so the whole (target, source
        # epoch, source root, validator) sort key packs into one int64 —
        # a single np.sort replaces the 4-key lexsort and its gathers.
        # The validator occupies the low bits, keeping voters ascending
        # within each link.
        spans = []
        packable = True
        for array in (validators, source_roots, source_epochs):
            low, high = int(array.min()), int(array.max())
            packable &= low >= 0
            spans.append(high + 1)
        v_span, sr_span, se_span = spans
        tr_low = int(target_roots.min())
        if packable and tr_low >= 0 and (
            (int(target_roots.max()) + 1) * se_span * sr_span * v_span < 2 ** 62
        ):
            combined = target_roots * se_span + source_epochs
            combined *= sr_span
            combined += source_roots
            combined *= v_span
            combined += validators
            combined = np.sort(combined)
            link_keys = combined // v_span
            voters = combined - link_keys * v_span
            boundary = np.empty(combined.shape[0], dtype=bool)
            boundary[0] = True
            np.not_equal(link_keys[1:], link_keys[:-1], out=boundary[1:])
            firsts = np.flatnonzero(boundary)
            link_ids = np.cumsum(boundary) - 1
            weights = np.where(eligible[voters], stakes[voters], 0.0)
            totals = np.bincount(link_ids, weights=weights)
            first_keys = link_keys[firsts]
            first_sources = first_keys // sr_span
            return {
                (
                    int(first_sources[link]) % se_span,
                    int(first_keys[link]) % sr_span,
                    int(first_sources[link]) // se_span,
                ): float(totals[link])
                for link in range(firsts.shape[0])
            }
        # General path: unbounded or negative ids, 4-key lexsort.
        order = np.lexsort((validators, source_roots, source_epochs, target_roots))
        validators = validators[order]
        source_epochs = source_epochs[order]
        source_roots = source_roots[order]
        target_roots = target_roots[order]
        boundary = np.empty(validators.shape[0], dtype=bool)
        boundary[0] = True
        np.not_equal(target_roots[1:], target_roots[:-1], out=boundary[1:])
        boundary[1:] |= source_epochs[1:] != source_epochs[:-1]
        boundary[1:] |= source_roots[1:] != source_roots[:-1]
        link_ids = np.cumsum(boundary) - 1
        weights = np.where(eligible[validators], stakes[validators], 0.0)
        totals = np.bincount(link_ids, weights=weights)
        firsts = np.flatnonzero(boundary)
        return {
            (
                int(source_epochs[first]),
                int(source_roots[first]),
                int(target_roots[first]),
            ): float(totals[link])
            for link, first in enumerate(firsts)
        }


class PythonBackend(StakeBackend):
    """Pure-Python loop reference, kept for exact-semantics validation."""

    name = "python"

    def apply_penalties(self, stakes, scores, ejected, rules):
        stakes = np.asarray(stakes, dtype=float)
        scores = np.asarray(scores, dtype=float)
        ejected = np.asarray(ejected, dtype=bool)
        shape = stakes.shape
        flat_stakes = stakes.ravel().tolist()
        flat_scores = scores.ravel().tolist()
        flat_ejected = ejected.ravel().tolist()
        total = 0.0
        out = []
        for stake, score, gone in zip(flat_stakes, flat_scores, flat_ejected):
            if gone:
                out.append(stake)
                continue
            new_stake = max(0.0, stake - score * stake / rules.penalty_quotient)
            total += stake - new_stake
            out.append(new_stake)
        if not self.track_penalty_totals:
            total = 0.0
        return np.array(out, dtype=float).reshape(shape), total

    def update_scores(self, scores, active, ejected, rules, in_leak):
        scores = np.asarray(scores, dtype=float)
        active = np.asarray(active, dtype=bool)
        ejected = np.asarray(ejected, dtype=bool)
        shape = scores.shape
        out = []
        for score, is_active, gone in zip(
            scores.ravel().tolist(), active.ravel().tolist(), ejected.ravel().tolist()
        ):
            if gone:
                out.append(score)
                continue
            if is_active:
                score = max(0.0, score - rules.score_recovery)
            else:
                score = score + rules.score_bias
            if not in_leak:
                score = max(0.0, score - rules.score_recovery_no_leak)
            out.append(score)
        return np.array(out, dtype=float).reshape(shape)

    def find_ejections(self, stakes, ejected, rules):
        stakes = np.asarray(stakes, dtype=float)
        ejected = np.asarray(ejected, dtype=bool)
        shape = stakes.shape
        out = [
            (not gone) and stake <= rules.ejection_balance
            for stake, gone in zip(stakes.ravel().tolist(), ejected.ravel().tolist())
        ]
        return np.array(out, dtype=bool).reshape(shape)

    def attestation_rewards_epoch_update(self, stakes, active, ineligible, rules, in_leak):
        stakes = np.asarray(stakes, dtype=float)
        shape = stakes.shape
        leak = leak_mask(in_leak, shape)
        flat_stakes = stakes.ravel().tolist()
        flat_active = np.asarray(active, dtype=bool).ravel().tolist()
        flat_ineligible = np.asarray(ineligible, dtype=bool).ravel().tolist()
        flat_leak = (
            [bool(in_leak)] * len(flat_stakes)
            if leak is None
            else leak.ravel().tolist()
        )
        out_stakes = []
        credited = []
        deducted = []
        for stake, is_active, out, leaked in zip(
            flat_stakes, flat_active, flat_ineligible, flat_leak
        ):
            credit = 0.0
            deduct = 0.0
            if not out:
                if is_active:
                    if not leaked:
                        grown = min(
                            stake + stake * rules.base_reward_fraction,
                            rules.max_effective_balance,
                        )
                        credit = grown - stake
                        stake = grown
                else:
                    deduct = min(stake, stake * rules.attestation_penalty_fraction)
                    stake = stake - deduct
            out_stakes.append(stake)
            credited.append(credit)
            deducted.append(deduct)
        # Totals go through the same np.sum reduction as the vectorized
        # backend (pairwise summation) so they too are bit-identical.
        credited_array = np.array(credited, dtype=float).reshape(shape)
        deducted_array = np.array(deducted, dtype=float).reshape(shape)
        return RewardOutcome(
            stakes=np.array(out_stakes, dtype=float).reshape(shape),
            rewarded=credited_array > 0.0,
            penalized=deducted_array > 0.0,
            total_rewards=float(np.sum(credited_array)),
            total_penalties=float(np.sum(deducted_array)),
        )

    def slashing_epoch_update(self, stakes, slashable, slashed, ineligible, rules):
        stakes = np.asarray(stakes, dtype=float)
        shape = stakes.shape
        flat_stakes = stakes.ravel().tolist()
        flat_slashable = np.asarray(slashable, dtype=bool).ravel().tolist()
        flat_slashed = np.asarray(slashed, dtype=bool).ravel().tolist()
        flat_ineligible = np.asarray(ineligible, dtype=bool).ravel().tolist()
        out_stakes = []
        out_slashed = []
        out_newly = []
        deducted = []
        for stake, target, done, out in zip(
            flat_stakes, flat_slashable, flat_slashed, flat_ineligible
        ):
            newly = target and not done and not out
            deduct = min(stake, stake * rules.penalty_fraction) if newly else 0.0
            out_stakes.append(stake - deduct)
            out_slashed.append(done or newly)
            out_newly.append(newly)
            deducted.append(deduct)
        return SlashingEpochOutcome(
            stakes=np.array(out_stakes, dtype=float).reshape(shape),
            slashed=np.array(out_slashed, dtype=bool).reshape(shape),
            newly_slashed=np.array(out_newly, dtype=bool).reshape(shape),
            total_penalty=float(np.sum(np.array(deducted, dtype=float))),
        )

    def ffg_link_supports(
        self,
        vote_validators,
        vote_source_epochs,
        vote_source_roots,
        vote_target_roots,
        stakes,
        eligible,
    ):
        validators = np.asarray(vote_validators, dtype=np.int64).tolist()
        source_epochs = np.asarray(vote_source_epochs, dtype=np.int64).tolist()
        source_roots = np.asarray(vote_source_roots, dtype=np.int64).tolist()
        target_roots = np.asarray(vote_target_roots, dtype=np.int64).tolist()
        stakes = np.asarray(stakes, dtype=float).tolist()
        eligible = np.asarray(eligible, dtype=bool).tolist()
        # The faithful port of the dict-based implementation this kernel
        # replaced: enumerate the distinct links, then re-scan the whole
        # vote set once per link (``voters_for_link``) and sum the stakes
        # of its eligible voters in ascending validator order
        # (``stake_of``) — the exact sequential IEEE-754 additions the
        # vectorized backend reproduces per link via ``np.bincount``.
        keys = list(zip(source_epochs, source_roots, target_roots))
        links: List[Tuple[int, int, int]] = []
        seen = set()
        for key in keys:
            if key not in seen:
                seen.add(key)
                links.append(key)
        supports = {}
        for link in links:
            voters = [
                voter for voter, key in zip(validators, keys) if key == link
            ]
            support = 0.0
            for voter in sorted(voters):
                if eligible[voter]:
                    support += stakes[voter]
            supports[link] = support
        return supports

    def epoch_update(self, stakes, scores, active, ejected, rules, in_leak=True):
        # One fused pass per element, applying the identical arithmetic in
        # the identical order as the composed stages.  For the small
        # populations this backend targets (a handful of group ledgers) the
        # single conversion round-trip beats a dozen tiny array ops.
        stakes = np.asarray(stakes, dtype=float)
        shape = stakes.shape
        leak = leak_mask(in_leak, shape)
        flat_stakes = stakes.ravel().tolist()
        flat_scores = np.asarray(scores, dtype=float).ravel().tolist()
        flat_active = np.asarray(active, dtype=bool).ravel().tolist()
        flat_ejected = np.asarray(ejected, dtype=bool).ravel().tolist()
        flat_leak = (
            [bool(in_leak)] * len(flat_stakes)
            if leak is None
            else leak.ravel().tolist()
        )
        out_newly = [False] * len(flat_stakes)
        total_penalty = 0.0
        for i, (stake, score, is_active, gone, leaked) in enumerate(
            zip(flat_stakes, flat_scores, flat_active, flat_ejected, flat_leak)
        ):
            if gone:
                continue
            if leaked:
                new_stake = max(0.0, stake - score * stake / rules.penalty_quotient)
                total_penalty += stake - new_stake
                stake = new_stake
            if is_active:
                score = max(0.0, score - rules.score_recovery)
            else:
                score = score + rules.score_bias
            if not leaked:
                score = max(0.0, score - rules.score_recovery_no_leak)
            if stake <= rules.ejection_balance:
                out_newly[i] = True
                flat_ejected[i] = True
            flat_stakes[i] = stake
            flat_scores[i] = score
        if not self.track_penalty_totals:
            total_penalty = 0.0
        return EpochOutcome(
            stakes=np.array(flat_stakes, dtype=float).reshape(shape),
            scores=np.array(flat_scores, dtype=float).reshape(shape),
            ejected=np.array(flat_ejected, dtype=bool).reshape(shape),
            newly_ejected=np.array(out_newly, dtype=bool).reshape(shape),
            total_penalty=total_penalty,
        )


_BACKENDS: Dict[str, Type[StakeBackend]] = {
    NumpyBackend.name: NumpyBackend,
    PythonBackend.name: PythonBackend,
}

#: Optional backends: name -> module that registers it on import.  Probed
#: lazily (importing numba costs seconds) and at most once; a failed probe
#: records the reason so ``get_backend`` can point at the missing extra.
_OPTIONAL_BACKENDS: Dict[str, str] = {"numba": "repro.core.backend_numba"}
_OPTIONAL_BACKEND_ERRORS: Dict[str, str] = {}
_OPTIONAL_BACKENDS_PROBED = False


def register_backend(backend_class: Type[StakeBackend]) -> Type[StakeBackend]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    _BACKENDS[backend_class.name] = backend_class
    return backend_class


def _probe_optional_backends() -> None:
    """Import-register every optional backend whose dependency is present."""
    global _OPTIONAL_BACKENDS_PROBED
    if _OPTIONAL_BACKENDS_PROBED:
        return
    _OPTIONAL_BACKENDS_PROBED = True
    import importlib

    for name, module in _OPTIONAL_BACKENDS.items():
        if name in _BACKENDS:
            continue
        try:
            importlib.import_module(module)
        except ImportError as exc:
            _OPTIONAL_BACKEND_ERRORS[name] = (
                f"backend {name!r} is optional and its dependency is not "
                f"installed ({exc}); install it with `pip install {name}` "
                f"(CI uses requirements-ci-numba.txt)"
            )
        except Exception as exc:  # pragma: no cover - e.g. broken numba install
            _OPTIONAL_BACKEND_ERRORS[name] = (
                f"backend {name!r} failed to initialise: {exc}"
            )


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backends (optional ones only when importable)."""
    _probe_optional_backends()
    return tuple(sorted(_BACKENDS))


#: Population size below which the loop backend beats the vectorized one
#: (NumPy dispatch overhead dominates tiny arrays).  Used by ``"auto"``.
AUTO_BACKEND_THRESHOLD = 32


def get_backend(
    backend: "str | StakeBackend" = "numpy", population: Optional[int] = None
) -> StakeBackend:
    """Resolve a backend name (or pass an instance through).

    ``"auto"`` picks ``"python"`` for populations smaller than
    ``AUTO_BACKEND_THRESHOLD`` (a handful of group ledgers) and ``"numpy"``
    otherwise; it requires ``population``.
    """
    if isinstance(backend, StakeBackend):
        return backend
    if backend == "auto":
        if population is None:
            raise ValueError('backend "auto" needs the population size')
        backend = "python" if population < AUTO_BACKEND_THRESHOLD else "numpy"
    if backend not in _BACKENDS:
        _probe_optional_backends()
    try:
        return _BACKENDS[backend]()
    except KeyError:
        if backend in _OPTIONAL_BACKEND_ERRORS:
            raise ValueError(_OPTIONAL_BACKEND_ERRORS[backend]) from None
        raise ValueError(
            f"unknown backend {backend!r}; available: {available_backends()}"
        ) from None
