"""Flat-array stake-dynamics engine shared by the leak, Monte-Carlo and sim layers.

:class:`StakeEngine` holds the per-validator (or per-group) state of one
chain branch as flat NumPy arrays — stakes, inactivity scores, ejection
mask, optional stake weights — and advances it one epoch at a time through
a pluggable :mod:`repro.core.backend` kernel.
:class:`BatchedStakeEngine` adds a leading *trial* axis on top of the same
kernels: ``(trials, *entry_shape)`` state, one kernel call per epoch for
the whole batch, per-trial ``in_leak`` flags, and per-trial weighted
reductions — the engine the Monte-Carlo layer sweeps thousands of trials
on.  The
justification/finalization bookkeeping every branch-level simulation
repeats lives in :mod:`repro.core.ffg`; its streaming
:class:`~repro.core.ffg.FinalityTracker` is re-exported here for the
branch simulations that pair it with an engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

import numpy as np

from repro.core.backend import (
    EpochOutcome,
    RewardOutcome,
    RewardRules,
    SlashingEpochOutcome,
    SlashingRules,
    StakeBackend,
    StakeRules,
    get_backend,
)
from repro.core.backend import LeakFlag
from repro.core.ffg import BatchedFinalityTracker, FinalityTracker

__all__ = [
    "BatchedFinalityTracker",
    "BatchedStakeEngine",
    "FinalityTracker",
    "StakeEngine",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core is below spec)
    from repro.spec.config import SpecConfig


class StakeEngine:
    """Vectorized epoch-by-epoch stake dynamics for one population.

    Parameters
    ----------
    stakes:
        Initial per-entry stakes (one entry per validator or per group).
    weights:
        Optional per-entry share of the total validator set; defaults to
        uniform.  Weighted totals are what the branch-level active-stake
        ratios use (a group ledger carries its group's weight, a
        per-validator engine carries ``1/n`` each).
    config:
        Protocol parameters; defaults to mainnet.
    backend:
        ``"numpy"`` (default), ``"python"``, ``"auto"`` (loop backend for
        tiny populations, vectorized otherwise), or a backend instance.
    """

    def __init__(
        self,
        stakes: Sequence[float],
        *,
        weights: Optional[Sequence[float]] = None,
        scores: Optional[Sequence[float]] = None,
        ejected: Optional[Sequence[bool]] = None,
        config: "Optional[SpecConfig]" = None,
        backend: Union[str, StakeBackend] = "numpy",
    ) -> None:
        from repro.spec.config import SpecConfig

        self.config = config or SpecConfig.mainnet()
        self.rules = StakeRules.from_config(self.config)
        self.reward_rules = RewardRules.from_config(self.config)
        self.slashing_rules = SlashingRules.from_config(self.config)
        self.stakes = np.array(stakes, dtype=float)
        if self.stakes.ndim != 1:
            raise ValueError("stakes must be one-dimensional")
        n = self.stakes.shape[0]
        if n == 0:
            raise ValueError("the engine needs at least one entry")
        self.backend = get_backend(backend, population=n)
        self.weights = (
            np.full(n, 1.0 / n) if weights is None else np.array(weights, dtype=float)
        )
        if self.weights.shape != self.stakes.shape:
            raise ValueError("weights must match the stakes shape")
        self.scores = (
            np.zeros(n) if scores is None else np.array(scores, dtype=float)
        )
        self.ejected = (
            np.zeros(n, dtype=bool) if ejected is None else np.array(ejected, dtype=bool)
        )
        #: Slashed flags (slashed entries are also marked ejected).
        self.slashed = np.zeros(n, dtype=bool)
        #: Entry index -> epoch at which it was ejected.
        self.ejection_epochs: Dict[int, int] = {}
        self.epoch = 0

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        n: int,
        *,
        config: "Optional[SpecConfig]" = None,
        backend: Union[str, StakeBackend] = "numpy",
    ) -> "StakeEngine":
        """An engine of ``n`` validators at the maximum effective balance."""
        from repro.spec.config import SpecConfig

        cfg = config or SpecConfig.mainnet()
        return cls(
            np.full(n, cfg.max_effective_balance), config=cfg, backend=backend
        )

    @property
    def n(self) -> int:
        """Number of entries tracked."""
        return int(self.stakes.shape[0])

    # ------------------------------------------------------------------
    def step(self, active: Sequence[bool], in_leak: bool = True) -> EpochOutcome:
        """Advance one epoch (Equations 1–2, floor, ejection) and return the outcome."""
        active_mask = np.asarray(active, dtype=bool)
        if active_mask.shape != self.stakes.shape:
            raise ValueError("active mask must match the stakes shape")
        outcome = self.backend.epoch_update(
            self.stakes, self.scores, active_mask, self.ejected, self.rules, in_leak
        )
        self.stakes = outcome.stakes
        self.scores = outcome.scores
        self.ejected = outcome.ejected
        for index in np.flatnonzero(outcome.newly_ejected):
            self.ejection_epochs[int(index)] = self.epoch
        self.epoch += 1
        return outcome

    def apply_attestation_rewards(
        self, active: Sequence[bool], in_leak: bool = False
    ) -> RewardOutcome:
        """Apply one epoch of attestation rewards/penalties in place.

        Entries already ejected or slashed are ineligible and untouched.
        Does not advance :attr:`epoch` — the incentive update rides along
        the same epoch as :meth:`step`.
        """
        active_mask = np.asarray(active, dtype=bool)
        if active_mask.shape != self.stakes.shape:
            raise ValueError("active mask must match the stakes shape")
        outcome = self.backend.attestation_rewards_epoch_update(
            self.stakes,
            active_mask,
            self.ejected | self.slashed,
            self.reward_rules,
            in_leak,
        )
        self.stakes = outcome.stakes
        return outcome

    def apply_slashings(self, slashable: Sequence[bool]) -> SlashingEpochOutcome:
        """Slash the entries selected by ``slashable`` in place.

        Already-slashed and already-ejected entries are skipped (an entry
        that left the active set can no longer be charged).  Newly slashed
        entries are marked ejected — slashing implies exiting the set —
        and recorded in :attr:`ejection_epochs` at the current epoch.
        """
        slashable_mask = np.asarray(slashable, dtype=bool)
        if slashable_mask.shape != self.stakes.shape:
            raise ValueError("slashable mask must match the stakes shape")
        outcome = self.backend.slashing_epoch_update(
            self.stakes, slashable_mask, self.slashed, self.ejected, self.slashing_rules
        )
        self.stakes = outcome.stakes
        self.slashed = outcome.slashed
        self.ejected = self.ejected | outcome.newly_slashed
        for index in np.flatnonzero(outcome.newly_slashed):
            self.ejection_epochs.setdefault(int(index), self.epoch)
        return outcome

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def effective_stakes(self) -> np.ndarray:
        """Per-entry stake counting towards totals (0 once ejected)."""
        return np.where(self.ejected, 0.0, self.stakes)

    def total_stake(self) -> float:
        """Weighted total of the effective stakes."""
        return float(np.sum(self.weights * self.effective_stakes()))

    def stake_of(self, mask: Sequence[bool]) -> float:
        """Weighted effective stake of the entries selected by ``mask``."""
        selection = np.asarray(mask, dtype=bool)
        return float(np.sum(self.weights * self.effective_stakes() * selection))

    def active_ratio(self, active: Sequence[bool]) -> float:
        """Ratio of active (non-ejected) stake to the total effective stake."""
        total = self.total_stake()
        if total <= 0:
            return 0.0
        return self.stake_of(np.asarray(active, dtype=bool) & ~self.ejected) / total


class BatchedStakeEngine:
    """:class:`StakeEngine` with a leading trial axis: all trials per kernel call.

    State arrays are shaped ``(trials, *entry_shape)`` — ``entry_shape`` is
    whatever one trial's population looks like, e.g. ``(n,)`` for a flat
    validator set or ``(2, n + 1)`` for the Monte-Carlo two-branch layout —
    and every :meth:`step` advances *all* trials with a single backend
    kernel call.  Trial ``t`` of a batch evolves bit-identically to a
    standalone :class:`StakeEngine` fed row ``t`` (per-element arithmetic
    is shape-independent in every backend, and weighted reductions use
    ``np.sum`` over the entry axes, whose pairwise blocking depends only
    on the entry count — asserted by the backend tests).

    Parameters
    ----------
    stakes:
        Initial stakes, shape ``(trials, *entry_shape)`` with at least two
        dimensions.
    weights:
        Optional per-entry share of the validator set, broadcastable to
        ``entry_shape`` (trials share one weighting); defaults to uniform
        over all entries of a trial.
    in_leak (on :meth:`step` / :meth:`apply_attestation_rewards`):
        A scalar applied to every trial, or a ``(trials,)`` boolean array
        applied per trial.
    """

    def __init__(
        self,
        stakes: np.ndarray,
        *,
        weights: Optional[Sequence[float]] = None,
        scores: Optional[np.ndarray] = None,
        ejected: Optional[np.ndarray] = None,
        config: "Optional[SpecConfig]" = None,
        backend: Union[str, StakeBackend] = "numpy",
    ) -> None:
        from repro.spec.config import SpecConfig

        self.config = config or SpecConfig.mainnet()
        self.rules = StakeRules.from_config(self.config)
        self.reward_rules = RewardRules.from_config(self.config)
        self.slashing_rules = SlashingRules.from_config(self.config)
        self.stakes = np.array(stakes, dtype=float)
        if self.stakes.ndim < 2:
            raise ValueError("batched stakes need a (trials, *entry_shape) shape")
        shape = self.stakes.shape
        entries = int(np.prod(shape[1:]))
        if entries == 0:
            raise ValueError("the engine needs at least one entry per trial")
        self.backend = get_backend(backend, population=entries)
        if weights is None:
            self.weights = np.full(shape[1:], 1.0 / entries)
        else:
            self.weights = np.broadcast_to(
                np.asarray(weights, dtype=float), shape[1:]
            ).copy()
        self.scores = (
            np.zeros(shape) if scores is None else np.array(scores, dtype=float)
        )
        self.ejected = (
            np.zeros(shape, dtype=bool)
            if ejected is None
            else np.array(ejected, dtype=bool)
        )
        for name, value in (("scores", self.scores), ("ejected", self.ejected)):
            if value.shape != shape:
                raise ValueError(f"{name} must match the stakes shape {shape}")
        self.slashed = np.zeros(shape, dtype=bool)
        #: Epoch at which each entry was ejected (``-1`` while still active).
        self.ejection_epoch = np.full(shape, -1, dtype=np.int64)
        self.epoch = 0

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        trials: int,
        n: int,
        *,
        config: "Optional[SpecConfig]" = None,
        backend: Union[str, StakeBackend] = "numpy",
    ) -> "BatchedStakeEngine":
        """``trials`` independent populations of ``n`` validators at the cap."""
        from repro.spec.config import SpecConfig

        cfg = config or SpecConfig.mainnet()
        return cls(
            np.full((trials, n), cfg.max_effective_balance),
            config=cfg,
            backend=backend,
        )

    @property
    def trials(self) -> int:
        """Number of trials in the batch."""
        return int(self.stakes.shape[0])

    @property
    def entry_shape(self) -> tuple:
        """Shape of one trial's population."""
        return self.stakes.shape[1:]

    @property
    def _entry_axes(self) -> tuple:
        return tuple(range(1, self.stakes.ndim))

    def _check_mask(self, mask, name: str) -> np.ndarray:
        out = np.asarray(mask, dtype=bool)
        if out.shape != self.stakes.shape:
            raise ValueError(
                f"{name} must match the batched stakes shape {self.stakes.shape}"
            )
        return out

    # ------------------------------------------------------------------
    def step(self, active: np.ndarray, in_leak: LeakFlag = True) -> EpochOutcome:
        """Advance every trial one epoch; ``in_leak`` may vary per trial."""
        active_mask = self._check_mask(active, "active mask")
        outcome = self.backend.epoch_update(
            self.stakes, self.scores, active_mask, self.ejected, self.rules, in_leak
        )
        self.stakes = outcome.stakes
        self.scores = outcome.scores
        self.ejected = outcome.ejected
        self.ejection_epoch[outcome.newly_ejected] = self.epoch
        self.epoch += 1
        return outcome

    def apply_attestation_rewards(
        self, active: np.ndarray, in_leak: LeakFlag = False
    ) -> RewardOutcome:
        """One epoch of attestation rewards/penalties across all trials."""
        active_mask = self._check_mask(active, "active mask")
        outcome = self.backend.attestation_rewards_epoch_update(
            self.stakes,
            active_mask,
            self.ejected | self.slashed,
            self.reward_rules,
            in_leak,
        )
        self.stakes = outcome.stakes
        return outcome

    def apply_slashings(self, slashable: np.ndarray) -> SlashingEpochOutcome:
        """Slash the selected entries of every trial in place."""
        slashable_mask = self._check_mask(slashable, "slashable mask")
        outcome = self.backend.slashing_epoch_update(
            self.stakes, slashable_mask, self.slashed, self.ejected, self.slashing_rules
        )
        self.stakes = outcome.stakes
        self.slashed = outcome.slashed
        self.ejected = self.ejected | outcome.newly_slashed
        np.copyto(
            self.ejection_epoch,
            self.epoch,
            where=outcome.newly_slashed & (self.ejection_epoch < 0),
        )
        return outcome

    # ------------------------------------------------------------------
    # Aggregates — every reduction returns one value per trial.
    # ------------------------------------------------------------------
    def effective_stakes(self) -> np.ndarray:
        """Per-entry stake counting towards totals (0 once ejected)."""
        return np.where(self.ejected, 0.0, self.stakes)

    def total_stake(self) -> np.ndarray:
        """Weighted total of the effective stakes, shape ``(trials,)``."""
        return np.sum(self.weights * self.effective_stakes(), axis=self._entry_axes)

    def stake_of(self, mask, effective: bool = True) -> np.ndarray:
        """Weighted stake of the selected entries, shape ``(trials,)``.

        With ``effective=False`` ejected entries keep their last stake —
        the Monte-Carlo stopping rule reads the Byzantine stake this way
        (it freezes at its ejection value).
        """
        selection = self._check_mask(mask, "mask")
        stakes = self.effective_stakes() if effective else self.stakes
        return np.sum(self.weights * stakes * selection, axis=self._entry_axes)

    def active_ratio(self, active) -> np.ndarray:
        """Active (non-ejected) share of the effective stake per trial."""
        active_mask = self._check_mask(active, "active mask")
        totals = self.total_stake()
        selected = self.stake_of(active_mask & ~self.ejected)
        return np.divide(
            selected, totals, out=np.zeros(self.trials), where=totals > 0
        )
