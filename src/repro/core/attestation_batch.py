"""Flat-array attestation batches: the committee-level wire format.

The slot-level simulator used to move one Python :class:`Attestation`
object per validator through the network and ingest it once per node —
O(N²) object churn per slot.  Honest committee members that share a view
produce *identical* attestation content (same head, same FFG link), so a
whole committee's votes compress into one :class:`AttestationBatch`: the
shared ``(slot, head, source, target)`` content plus a flat ``int64``
array of validator indices.  Agents emit batches per committee, the
transport carries them as single messages, and a view node ingests them
in one call (bulk :meth:`repro.core.ffg.FlatVotePool.add_batch`,
vectorized fork-choice latest-message update, array-append activity
accounting).

This module sits in ``core`` and therefore knows nothing about the spec
layer: roots and checkpoints are duck-typed (anything hashable with
``.epoch``/``.root`` works; the spec layer passes
:class:`repro.spec.types.Root` and :class:`repro.spec.checkpoint.Checkpoint`).

:class:`AttestationColumns` is the growable column store view nodes use
to record *seen* checkpoint votes per target epoch — the array-native
replacement for the old per-epoch ``List[Attestation]`` whose set scans
made ``active_indices_for_epoch`` O(votes) Python per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Sequence, Tuple

import numpy as np


class RootInterner:
    """Dense integer ids for hashable root keys.

    The one implementation behind every root-id space in the codebase
    (the FFG vote pool's, the fork-choice store's).  Ids are append-only
    and local to one interner — ids from different interners must never
    be compared, which is why each consumer exposes its own
    ``root_id_of``-style lookup instead of the raw interner.
    """

    __slots__ = ("_ids", "_roots")

    def __init__(self) -> None:
        self._ids: dict = {}
        self._roots: list = []

    def intern(self, root: Hashable) -> int:
        """Return the dense id of ``root``, interning it if new."""
        root_id = self._ids.get(root)
        if root_id is None:
            root_id = len(self._roots)
            self._ids[root] = root_id
            self._roots.append(root)
        return root_id

    def lookup(self, root: Hashable) -> Optional[int]:
        """The id of ``root`` if it was ever interned, else ``None``."""
        return self._ids.get(root)

    def root_of(self, root_id: int) -> Hashable:
        """The root key interned under ``root_id``."""
        return self._roots[root_id]

    @property
    def roots(self) -> list:
        """The interned roots in id order (treat as read-only)."""
        return self._roots

    def clone(self) -> "RootInterner":
        """An independent interner with the same id assignments.

        Used when a view splits: the child must keep interning into the
        same id space it inherited, without new ids leaking back into the
        parent.
        """
        copy = RootInterner()
        copy._ids = dict(self._ids)
        copy._roots = list(self._roots)
        return copy

    def __len__(self) -> int:
        return len(self._roots)


@dataclass(frozen=True, eq=False)
class AttestationBatch:
    """One committee's identical attestations, in flat-array form.

    All validators in ``validators`` cast the same block vote
    (``head_root``) and the same checkpoint vote (``source -> target``)
    at ``slot``.  Byzantine equivocations never share content and are
    sent as plain per-validator attestations instead.

    Equality and hashing are content-based (the dataclass-generated
    versions would choke on the array field).
    """

    slot: int
    #: The shared block vote (LMD-GHOST head of the emitting view).
    head_root: Hashable
    #: The shared FFG source checkpoint (``.epoch`` / ``.root``).
    source: Any
    #: The shared FFG target checkpoint (``.epoch`` / ``.root``).
    target: Any
    #: Validator indices casting this vote (``int64``, non-empty).
    validators: np.ndarray

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttestationBatch):
            return NotImplemented
        return (
            self.slot == other.slot
            and self.head_root == other.head_root
            and self.source == other.source
            and self.target == other.target
            and np.array_equal(self.validators, other.validators)
        )

    def __hash__(self) -> int:
        return hash(
            (self.slot, self.head_root, self.source, self.target, self.validators.tobytes())
        )

    def __post_init__(self) -> None:
        array = np.asarray(self.validators, dtype=np.int64)
        if array.ndim != 1 or array.shape[0] == 0:
            raise ValueError("an attestation batch needs a non-empty 1-D validator array")
        object.__setattr__(self, "validators", array)
        if self.slot < 0:
            raise ValueError("attestation slot must be non-negative")
        if self.target.epoch < self.source.epoch:
            raise ValueError("batch target epoch must not precede its source epoch")

    # ------------------------------------------------------------------
    @property
    def target_epoch(self) -> int:
        """Epoch of the shared FFG target."""
        return int(self.target.epoch)

    def __len__(self) -> int:
        return int(self.validators.shape[0])

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AttestationBatch(slot={self.slot}, n={len(self)}, "
            f"src_epoch={self.source.epoch}, tgt_epoch={self.target.epoch})"
        )


class AttestationColumns:
    """Growable flat columns of checkpoint votes seen for one target epoch.

    Rows are appended in ingestion order (which keeps array scans
    equivalent to the list walks they replace); roots are stored as
    dense integer ids interned by the caller (a view node reuses its
    vote pool's interner so ids agree across structures).
    """

    __slots__ = ("validators", "source_epochs", "source_roots", "target_roots", "count")

    def __init__(self, initial_capacity: int = 64) -> None:
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        self.validators = np.empty(initial_capacity, dtype=np.int64)
        self.source_epochs = np.empty(initial_capacity, dtype=np.int64)
        self.source_roots = np.empty(initial_capacity, dtype=np.int64)
        self.target_roots = np.empty(initial_capacity, dtype=np.int64)
        self.count = 0

    # ------------------------------------------------------------------
    def _ensure_capacity(self, extra: int) -> None:
        needed = self.count + extra
        capacity = self.validators.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("validators", "source_epochs", "source_roots", "target_roots"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=np.int64)
            new[: self.count] = old[: self.count]
            setattr(self, name, new)

    def append(
        self, validator: int, source_epoch: int, source_root_id: int, target_root_id: int
    ) -> None:
        """Record one vote row."""
        self._ensure_capacity(1)
        row = self.count
        self.validators[row] = validator
        self.source_epochs[row] = source_epoch
        self.source_roots[row] = source_root_id
        self.target_roots[row] = target_root_id
        self.count = row + 1

    def extend(
        self,
        validators: np.ndarray,
        source_epoch: int,
        source_root_id: int,
        target_root_id: int,
    ) -> None:
        """Record a batch of rows sharing the same link (one slice write)."""
        n = int(np.asarray(validators).shape[0])
        if n == 0:
            return
        self._ensure_capacity(n)
        start, end = self.count, self.count + n
        self.validators[start:end] = validators
        self.source_epochs[start:end] = source_epoch
        self.source_roots[start:end] = source_root_id
        self.target_roots[start:end] = target_root_id
        self.count = end

    # ------------------------------------------------------------------
    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(validators, source_epochs, source_root_ids, target_root_ids)``
        array views of the recorded rows (treat as read-only)."""
        n = self.count
        return (
            self.validators[:n],
            self.source_epochs[:n],
            self.source_roots[:n],
            self.target_roots[:n],
        )

    def clone(self) -> "AttestationColumns":
        """An independent snapshot of the recorded rows.

        Copies exactly the occupied prefix (capacity restarts at the row
        count), so forking a view group does not duplicate growth slack.
        """
        copy = AttestationColumns(initial_capacity=max(self.count, 1))
        n = self.count
        copy.validators[:n] = self.validators[:n]
        copy.source_epochs[:n] = self.source_epochs[:n]
        copy.source_roots[:n] = self.source_roots[:n]
        copy.target_roots[:n] = self.target_roots[:n]
        copy.count = n
        return copy

    def voters_for_target_root(self, target_root_id: int) -> np.ndarray:
        """Distinct validator indices whose vote carried ``target_root_id``."""
        n = self.count
        mask = self.target_roots[:n] == target_root_id
        return np.unique(self.validators[:n][mask])

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0
