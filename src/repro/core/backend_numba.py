"""Optional numba-JIT backend for the stake-dynamics epoch update.

Importing this module requires :mod:`numba`; :mod:`repro.core.backend`
probes it lazily and registers :class:`NumbaBackend` only when the import
succeeds, so environments without numba keep working (``get_backend``
then raises a :class:`ValueError` naming the missing extra).

The backend fuses the three epoch-update stages — Equation-2 penalties,
Equation-1 score updates with the zero floor, and the ejection test —
into one compiled pass per element, the same fusion the pure-Python
reference performs.  Every per-element operation is the exact IEEE-754
double sequence of the numpy/python paths, and the penalty total is
reduced with the same ``np.sum`` pairwise formula as the numpy backend,
so trajectories are **bit-identical** across all three backends (the
existing equivalence suites assert this when numba is installed).

The remaining kernels (attestation rewards, slashing, FFG link supports)
are inherited from :class:`~repro.core.backend.NumpyBackend` unchanged:
the Monte-Carlo hot path this backend targets spends its time in the
stake-dynamics update.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401 - ImportError here keeps the backend unregistered

from repro.core.backend import (
    EpochOutcome,
    NumpyBackend,
    StakeRules,
    leak_mask,
    register_backend,
)


@njit(cache=True)
def _fused_epoch_kernel(
    stakes,
    scores,
    active,
    ejected,
    leak,
    score_bias,
    score_recovery,
    score_recovery_no_leak,
    penalty_quotient,
    ejection_balance,
    out_stakes,
    out_scores,
    out_ejected,
    out_newly,
):
    """One fused pass over flat arrays, element order = C order.

    Mirrors ``PythonBackend.epoch_update``'s loop body operation for
    operation (penalty, score update, no-leak recovery, ejection test) so
    each element's arithmetic is bit-identical to the reference.
    """
    for i in range(stakes.shape[0]):
        stake = stakes[i]
        score = scores[i]
        if ejected[i]:
            out_stakes[i] = stake
            out_scores[i] = score
            out_ejected[i] = True
            out_newly[i] = False
            continue
        if leak[i]:
            new_stake = stake - score * stake / penalty_quotient
            if new_stake < 0.0:
                new_stake = 0.0
            stake = new_stake
        if active[i]:
            score = score - score_recovery
            if score < 0.0:
                score = 0.0
        else:
            score = score + score_bias
        if not leak[i]:
            score = score - score_recovery_no_leak
            if score < 0.0:
                score = 0.0
        newly = stake <= ejection_balance
        out_stakes[i] = stake
        out_scores[i] = score
        out_ejected[i] = newly
        out_newly[i] = newly


@register_backend
class NumbaBackend(NumpyBackend):
    """JIT-fused epoch updates, bit-identical to the numpy path."""

    name = "numba"

    def epoch_update(self, stakes, scores, active, ejected, rules: StakeRules, in_leak=True):
        stakes = np.ascontiguousarray(stakes, dtype=np.float64)
        shape = stakes.shape
        flat_stakes = stakes.ravel()
        flat_scores = np.ascontiguousarray(scores, dtype=np.float64).ravel()
        flat_active = np.ascontiguousarray(active, dtype=np.bool_).ravel()
        flat_ejected = np.ascontiguousarray(ejected, dtype=np.bool_).ravel()
        leak = leak_mask(in_leak, shape)
        if leak is None:
            flat_leak = np.full(flat_stakes.shape[0], bool(in_leak), dtype=np.bool_)
        else:
            flat_leak = np.ascontiguousarray(leak, dtype=np.bool_).ravel()
        out_stakes = np.empty_like(flat_stakes)
        out_scores = np.empty_like(flat_scores)
        out_ejected = np.empty_like(flat_ejected)
        out_newly = np.empty_like(flat_ejected)
        _fused_epoch_kernel(
            flat_stakes,
            flat_scores,
            flat_active,
            flat_ejected,
            flat_leak,
            rules.score_bias,
            rules.score_recovery,
            rules.score_recovery_no_leak,
            rules.penalty_quotient,
            rules.ejection_balance,
            out_stakes,
            out_scores,
            out_ejected,
            out_newly,
        )
        # Same pairwise-sum total as the numpy path: ejected and no-leak
        # elements contribute exactly 0 to the difference, and stakes are
        # only ever modified by the penalty stage.
        if self.track_penalty_totals and flat_leak.any():
            total_penalty = float(np.sum(flat_stakes) - np.sum(out_stakes))
        else:
            total_penalty = 0.0
        return EpochOutcome(
            stakes=out_stakes.reshape(shape),
            scores=out_scores.reshape(shape),
            ejected=out_ejected.reshape(shape),
            newly_ejected=out_newly.reshape(shape),
            total_penalty=total_penalty,
        )
