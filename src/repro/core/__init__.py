"""Core stake-dynamics engine shared by the leak, Monte-Carlo and sim layers.

One implementation of the paper's per-epoch stake forces over flat arrays —
Equations 1–2 (inactivity scores and penalties, score floor, 16.75-ETH
ejection), attestation rewards/penalties (leak-gated, capped at the maximum
effective balance) and slashing with exit scheduling — with a vectorized
``"numpy"`` backend and a pure-loop ``"python"`` reference, plus the seeded
parallel trial runner used by the Monte-Carlo experiments.
"""

from repro.core.backend import (
    EpochOutcome,
    NumpyBackend,
    PythonBackend,
    RewardOutcome,
    RewardRules,
    SlashingEpochOutcome,
    SlashingRules,
    StakeBackend,
    StakeRules,
    available_backends,
    get_backend,
)
from repro.core.stake_engine import FinalityTracker, StakeEngine
from repro.core.trials import (
    DEFAULT_CHUNK_SIZE,
    TrialChunk,
    parallel_map,
    plan_chunks,
    resolve_jobs,
    run_chunked,
    run_trials,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "EpochOutcome",
    "FinalityTracker",
    "NumpyBackend",
    "PythonBackend",
    "RewardOutcome",
    "RewardRules",
    "SlashingEpochOutcome",
    "SlashingRules",
    "StakeBackend",
    "StakeEngine",
    "StakeRules",
    "TrialChunk",
    "available_backends",
    "get_backend",
    "parallel_map",
    "plan_chunks",
    "resolve_jobs",
    "run_chunked",
    "run_trials",
]
