"""Core stake-dynamics engine shared by the leak, Monte-Carlo and sim layers.

One implementation of the paper's per-epoch stake forces over flat arrays —
Equations 1–2 (inactivity scores and penalties, score floor, 16.75-ETH
ejection), attestation rewards/penalties (leak-gated, capped at the maximum
effective balance), slashing with exit scheduling and Casper FFG
justification/finalization over flat checkpoint-vote arrays — with a
vectorized ``"numpy"`` backend and a pure-loop ``"python"`` reference, plus
the seeded parallel trial runner used by the Monte-Carlo experiments.
"""

from repro.core.backend import (
    EpochOutcome,
    FinalityEvent,
    FinalityRules,
    FinalityUpdate,
    NumpyBackend,
    PythonBackend,
    RewardOutcome,
    RewardRules,
    SlashingEpochOutcome,
    SlashingRules,
    StakeBackend,
    StakeRules,
    available_backends,
    get_backend,
)
from repro.core.attestation_batch import AttestationBatch, AttestationColumns
from repro.core.ffg import (
    FinalityTracker,
    FlatVotePool,
    RatioFinality,
    finality_from_ratios,
    justified_at,
)
from repro.core.stake_engine import StakeEngine
from repro.core.trials import (
    DEFAULT_CHUNK_SIZE,
    TrialChunk,
    parallel_map,
    plan_chunks,
    resolve_jobs,
    run_chunked,
    run_trials,
)

__all__ = [
    "AttestationBatch",
    "AttestationColumns",
    "DEFAULT_CHUNK_SIZE",
    "EpochOutcome",
    "FinalityEvent",
    "FinalityRules",
    "FinalityTracker",
    "FinalityUpdate",
    "FlatVotePool",
    "NumpyBackend",
    "PythonBackend",
    "RatioFinality",
    "RewardOutcome",
    "RewardRules",
    "SlashingEpochOutcome",
    "SlashingRules",
    "StakeBackend",
    "StakeEngine",
    "StakeRules",
    "TrialChunk",
    "available_backends",
    "finality_from_ratios",
    "get_backend",
    "justified_at",
    "parallel_map",
    "plan_chunks",
    "resolve_jobs",
    "run_chunked",
    "run_trials",
]
