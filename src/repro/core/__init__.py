"""Core stake-dynamics engine shared by the leak, Monte-Carlo and sim layers.

One implementation of the paper's per-epoch stake forces over flat arrays —
Equations 1–2 (inactivity scores and penalties, score floor, 16.75-ETH
ejection), attestation rewards/penalties (leak-gated, capped at the maximum
effective balance), slashing with exit scheduling and Casper FFG
justification/finalization over flat checkpoint-vote arrays — with a
vectorized ``"numpy"`` backend, a pure-loop ``"python"`` reference and an
optional JIT-compiled ``"numba"`` backend (registered only when numba is
installed), plus the seeded parallel trial runner and trial-batched engine
used by the Monte-Carlo experiments.
"""

from repro.core.backend import (
    EpochOutcome,
    FinalityEvent,
    FinalityRules,
    FinalityUpdate,
    NumpyBackend,
    PythonBackend,
    RewardOutcome,
    RewardRules,
    SlashingEpochOutcome,
    SlashingRules,
    StakeBackend,
    StakeRules,
    available_backends,
    get_backend,
    leak_mask,
    register_backend,
)
from repro.core.attestation_batch import AttestationBatch, AttestationColumns
from repro.core.ffg import (
    BatchedFinalityTracker,
    FinalityTracker,
    FlatVotePool,
    RatioFinality,
    finality_from_ratios,
    justified_at,
)
from repro.core.stake_engine import BatchedStakeEngine, StakeEngine
from repro.core.trials import (
    DEFAULT_CHUNK_SIZE,
    TaskChunk,
    TrialChunk,
    group_chunks,
    parallel_map,
    plan_chunks,
    plan_task_chunks,
    resolve_jobs,
    run_chunk_groups,
    run_chunked,
    run_task_chunks,
    run_trials,
)

__all__ = [
    "AttestationBatch",
    "AttestationColumns",
    "BatchedFinalityTracker",
    "BatchedStakeEngine",
    "DEFAULT_CHUNK_SIZE",
    "EpochOutcome",
    "FinalityEvent",
    "FinalityRules",
    "FinalityTracker",
    "FinalityUpdate",
    "FlatVotePool",
    "NumpyBackend",
    "PythonBackend",
    "RatioFinality",
    "RewardOutcome",
    "RewardRules",
    "SlashingEpochOutcome",
    "SlashingRules",
    "StakeBackend",
    "StakeEngine",
    "StakeRules",
    "TaskChunk",
    "TrialChunk",
    "available_backends",
    "finality_from_ratios",
    "get_backend",
    "group_chunks",
    "justified_at",
    "leak_mask",
    "parallel_map",
    "plan_chunks",
    "plan_task_chunks",
    "register_backend",
    "resolve_jobs",
    "run_chunk_groups",
    "run_chunked",
    "run_task_chunks",
    "run_trials",
]
