"""Flat-array FFG vote accumulation and finality bookkeeping.

This module is the array-native half of the Casper FFG
justification/finalization engine; the other half is the
``finality_epoch_update`` kernel pair in :mod:`repro.core.backend`.

:class:`FlatVotePool` replaces the per-validator vote dicts that
``spec/finality.py`` used to re-scan once per target every epoch.  Votes
are stored as preallocated flat ``int64`` arrays — one row per
``(validator, target epoch)``, deduplicated on insert so a validator's
stake can never count twice towards a target epoch — and every insert
also bumps an incremental per-``(source epoch, source root, target
root)`` link tally, making :meth:`FlatVotePool.add_vote` O(1) and
handing a whole epoch's votes to the kernel as ready-made arrays with no
dict walk at all.  Roots can be any hashable, mutually orderable keys
(the spec layer uses :class:`repro.spec.types.Root`); they are interned
to dense integer ids so the kernels work on pure integer arrays.

:class:`FinalityTracker` (moved here from ``repro.core.stake_engine``,
which re-exports it) is the *streaming* form of the branch-level
justification rule the paper analyses — one active-stake ratio per epoch,
two consecutive justified epochs finalize — and
:func:`finality_from_ratios` is its vectorized counterpart, evaluating
whole ``(trials, epochs)`` ratio matrices in one shot.  Both delegate the
threshold test to :func:`justified_at` so they agree by construction
(asserted by ``tests/test_core_ffg.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.attestation_batch import RootInterner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core is below spec)
    from repro.spec.config import SpecConfig

#: A supermajority link key: ``(source_epoch, source_root_id, target_root_id)``.
LinkKey = Tuple[int, int, int]


class _EpochVotes:
    """The votes recorded for one target epoch, as growable flat arrays."""

    __slots__ = (
        "validators",
        "source_epochs",
        "source_roots",
        "target_roots",
        "count",
        "rows",
        "links",
    )

    def __init__(self, capacity: int) -> None:
        self.validators = np.empty(capacity, dtype=np.int64)
        self.source_epochs = np.empty(capacity, dtype=np.int64)
        self.source_roots = np.empty(capacity, dtype=np.int64)
        self.target_roots = np.empty(capacity, dtype=np.int64)
        self.count = 0
        #: validator index -> row, the O(1) double-vote guard.
        self.rows: Dict[int, int] = {}
        #: link key -> [vote count, insertion-time stake tally].
        self.links: Dict[LinkKey, List[float]] = {}

    def grow(self) -> None:
        capacity = 2 * self.validators.shape[0]
        for name in ("validators", "source_epochs", "source_roots", "target_roots"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=np.int64)
            new[: self.count] = old[: self.count]
            setattr(self, name, new)

    def clone(self) -> "_EpochVotes":
        """Independent copy of this epoch's rows, guards and link tallies."""
        copy = _EpochVotes(max(self.count, 1))
        n = self.count
        copy.validators[:n] = self.validators[:n]
        copy.source_epochs[:n] = self.source_epochs[:n]
        copy.source_roots[:n] = self.source_roots[:n]
        copy.target_roots[:n] = self.target_roots[:n]
        copy.count = n
        copy.rows = dict(self.rows)
        copy.links = {key: list(tally) for key, tally in self.links.items()}
        return copy


class FlatVotePool:
    """Flat-array accumulator of FFG checkpoint votes.

    Parameters
    ----------
    initial_capacity:
        Rows preallocated per target epoch; arrays double when full.
    stakes:
        Optional per-validator stake array.  When given, each insert adds
        ``stakes[validator]`` to the vote's link tally, so
        :meth:`link_stake` answers supermajority-style queries in O(1).
        The tallies reflect *insertion-time* stakes — exact whenever
        stakes are static over the vote window (the Figure-10 workloads);
        callers whose stakes drift mid-epoch (the ``BeaconState``
        adapter) recompute supports from current stakes inside
        :meth:`repro.core.backend.StakeBackend.finality_epoch_update`
        instead.

    A validator's first vote per target epoch wins; later conflicting
    votes are rejected (double votes are slashable, never double-counted).
    """

    def __init__(
        self,
        initial_capacity: int = 64,
        stakes: Optional[Sequence[float]] = None,
    ) -> None:
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        self._initial_capacity = int(initial_capacity)
        self._stakes = None if stakes is None else np.asarray(stakes, dtype=float)
        self._interner = RootInterner()
        self._rank_cache: Optional[np.ndarray] = None
        self._epochs: Dict[int, _EpochVotes] = {}

    def clone(self) -> "FlatVotePool":
        """An independent pool with the same votes, links and root ids.

        The interner is duplicated so both sides keep interning into the
        id space they inherited without sharing it — required when a view
        group splits and each child accumulates votes on its own.
        """
        copy = FlatVotePool(
            initial_capacity=self._initial_capacity,
            stakes=None if self._stakes is None else self._stakes.copy(),
        )
        copy._interner = self._interner.clone()
        copy._rank_cache = None if self._rank_cache is None else self._rank_cache.copy()
        copy._epochs = {epoch: bucket.clone() for epoch, bucket in self._epochs.items()}
        return copy

    # ------------------------------------------------------------------
    # Root interning
    # ------------------------------------------------------------------
    def intern_root(self, root: Hashable) -> int:
        """Return the dense integer id of ``root``, interning it if new."""
        return self._interner.intern(root)

    def lookup_root(self, root: Hashable) -> Optional[int]:
        """The id of ``root`` if it was ever interned, else ``None``."""
        return self._interner.lookup(root)

    def root_of(self, root_id: int) -> Hashable:
        """The root key interned under ``root_id``."""
        return self._interner.root_of(root_id)

    def root_count(self) -> int:
        """Number of distinct roots interned so far."""
        return len(self._interner)

    def root_ranks(self) -> np.ndarray:
        """Array mapping root id -> rank in the roots' natural sort order.

        The kernels order targets and sources by checkpoint, which for a
        fixed epoch means by root; interning order is arbitrary, so this
        translation keeps the flat engine's iteration order identical to
        sorting the original root keys.  Recomputed only when new roots
        were interned since the last call (ids are append-only).
        """
        roots = self._interner.roots
        if self._rank_cache is None or self._rank_cache.shape[0] != len(roots):
            order = sorted(range(len(roots)), key=roots.__getitem__)
            ranks = np.empty(len(order), dtype=np.int64)
            for rank, root_id in enumerate(order):
                ranks[root_id] = rank
            self._rank_cache = ranks
        return self._rank_cache

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add_vote(
        self,
        validator_index: int,
        source_epoch: int,
        source_root: Hashable,
        target_epoch: int,
        target_root: Hashable,
    ) -> bool:
        """Record one checkpoint vote; returns ``True`` if it counted.

        O(1): one dict probe for the double-vote guard, one row append,
        one link-tally bump.
        """
        bucket = self._epochs.get(target_epoch)
        if bucket is None:
            bucket = _EpochVotes(self._initial_capacity)
            self._epochs[target_epoch] = bucket
        if validator_index in bucket.rows:
            return False
        if bucket.count == bucket.validators.shape[0]:
            bucket.grow()
        row = bucket.count
        bucket.validators[row] = validator_index
        bucket.source_epochs[row] = source_epoch
        bucket.source_roots[row] = self.intern_root(source_root)
        bucket.target_roots[row] = self.intern_root(target_root)
        bucket.rows[validator_index] = row
        bucket.count = row + 1
        key = (
            int(source_epoch),
            int(bucket.source_roots[row]),
            int(bucket.target_roots[row]),
        )
        tally = bucket.links.get(key)
        if tally is None:
            tally = [0, 0.0]
            bucket.links[key] = tally
        tally[0] += 1
        if self._stakes is not None:
            tally[1] += float(self._stakes[validator_index])
        return True

    def add_batch(
        self,
        validators: "np.ndarray",
        source_epoch: int,
        source_root: Hashable,
        target_epoch: int,
        target_root: Hashable,
    ) -> int:
        """Record a batch of votes sharing one ``source -> target`` link.

        The batch is the committee-aggregate case: every validator in
        ``validators`` casts the identical checkpoint vote.  Rows are
        appended in batch order, the double-vote guard applies per
        validator exactly as in :meth:`add_vote` (first vote per target
        epoch wins, duplicates within the batch included), and the link
        tally is bumped once for the whole batch.  Returns the number of
        votes that counted.
        """
        bucket = self._epochs.get(target_epoch)
        if bucket is None:
            bucket = _EpochVotes(self._initial_capacity)
            self._epochs[target_epoch] = bucket
        rows = bucket.rows
        row = bucket.count
        accepted: List[int] = []
        for validator in np.asarray(validators, dtype=np.int64).tolist():
            if validator in rows:
                continue
            rows[validator] = row
            row += 1
            accepted.append(validator)
        if not accepted:
            return 0
        count = len(accepted)
        while bucket.count + count > bucket.validators.shape[0]:
            bucket.grow()
        source_id = self.intern_root(source_root)
        target_id = self.intern_root(target_root)
        start, end = bucket.count, bucket.count + count
        accepted_arr = np.asarray(accepted, dtype=np.int64)
        bucket.validators[start:end] = accepted_arr
        bucket.source_epochs[start:end] = source_epoch
        bucket.source_roots[start:end] = source_id
        bucket.target_roots[start:end] = target_id
        bucket.count = end
        key = (int(source_epoch), source_id, target_id)
        tally = bucket.links.get(key)
        if tally is None:
            tally = [0, 0.0]
            bucket.links[key] = tally
        tally[0] += count
        if self._stakes is not None:
            tally[1] += float(self._stakes[accepted_arr].sum())
        return count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def epochs(self) -> List[int]:
        """Target epochs currently holding votes."""
        return list(self._epochs)

    def vote_count(self, target_epoch: int) -> int:
        """Number of distinct validators that voted at ``target_epoch``."""
        bucket = self._epochs.get(target_epoch)
        return 0 if bucket is None else bucket.count

    def total_votes(self) -> int:
        """Number of recorded votes across all target epochs."""
        return sum(bucket.count for bucket in self._epochs.values())

    def vote_arrays(
        self, target_epoch: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """The epoch's votes as ``(validators, source_epochs, source_root_ids,
        target_root_ids)`` array views, or ``None`` when no vote was cast.

        The views alias the pool's storage — treat them as read-only.
        """
        bucket = self._epochs.get(target_epoch)
        if bucket is None or bucket.count == 0:
            return None
        n = bucket.count
        return (
            bucket.validators[:n],
            bucket.source_epochs[:n],
            bucket.source_roots[:n],
            bucket.target_roots[:n],
        )

    def has_vote(self, target_epoch: int, validator_index: int) -> bool:
        """True if ``validator_index`` already voted at ``target_epoch``."""
        bucket = self._epochs.get(target_epoch)
        return bucket is not None and validator_index in bucket.rows

    def link_keys(self, target_epoch: int) -> Iterable[LinkKey]:
        """The distinct ``(source_epoch, source_root_id, target_root_id)``
        links voted for at ``target_epoch``."""
        bucket = self._epochs.get(target_epoch)
        return () if bucket is None else bucket.links.keys()

    def target_root_ids(self, target_epoch: int) -> List[int]:
        """Distinct target root ids voted for at ``target_epoch``."""
        bucket = self._epochs.get(target_epoch)
        if bucket is None:
            return []
        return sorted({key[2] for key in bucket.links})

    def link_count(
        self,
        target_epoch: int,
        source_epoch: int,
        source_root: Hashable,
        target_root: Hashable,
    ) -> int:
        """Votes recorded for the exact link, in O(1)."""
        tally = self._link_tally(target_epoch, source_epoch, source_root, target_root)
        return 0 if tally is None else int(tally[0])

    def link_stake(
        self,
        target_epoch: int,
        source_epoch: int,
        source_root: Hashable,
        target_root: Hashable,
    ) -> float:
        """Insertion-time stake recorded for the exact link, in O(1).

        Requires the pool to have been built with a ``stakes`` array.
        """
        if self._stakes is None:
            raise ValueError("link_stake needs a pool constructed with stakes")
        tally = self._link_tally(target_epoch, source_epoch, source_root, target_root)
        return 0.0 if tally is None else float(tally[1])

    def _link_tally(
        self,
        target_epoch: int,
        source_epoch: int,
        source_root: Hashable,
        target_root: Hashable,
    ) -> Optional[List[float]]:
        bucket = self._epochs.get(target_epoch)
        if bucket is None:
            return None
        source_id = self._interner.lookup(source_root)
        target_id = self._interner.lookup(target_root)
        if source_id is None or target_id is None:
            return None
        return bucket.links.get((int(source_epoch), source_id, target_id))

    # ------------------------------------------------------------------
    def clear_before(self, target_epoch: int) -> None:
        """Drop votes for target epochs strictly before ``target_epoch``."""
        for stale in [epoch for epoch in self._epochs if epoch < target_epoch]:
            del self._epochs[stale]


# ----------------------------------------------------------------------
# Ratio-threshold finality (the branch-level rule of the leak/MC layers)
# ----------------------------------------------------------------------
def justified_at(active_ratio: float, supermajority: float) -> bool:
    """The branch-level justification test: ratio meets the supermajority."""
    return active_ratio >= supermajority


@dataclass
class RatioFinality:
    """Vectorized finality read off a trajectory of active-stake ratios."""

    #: Per-epoch justification mask, shape ``(..., epochs)``.
    justified: np.ndarray
    #: First justified epoch index per trajectory (``-1`` if never).
    threshold_epoch: np.ndarray
    #: First finalization epoch index per trajectory (``-1`` if never) —
    #: the second of the first pair of consecutive justified epochs.
    finalization_epoch: np.ndarray


def finality_from_ratios(
    active_ratios: Sequence[float], supermajority: float
) -> RatioFinality:
    """Evaluate the consecutive-justification rule over whole ratio arrays.

    ``active_ratios`` may have any shape with epochs on the last axis
    (the Monte-Carlo layers batch ``(trials, epochs)`` matrices).  Epoch
    numbers are positional (0-based); feeding the same ratios one by one
    through :meth:`FinalityTracker.observe` with epochs ``0..T-1`` yields
    identical threshold and finalization epochs.
    """
    ratios = np.asarray(active_ratios, dtype=float)
    if ratios.ndim == 0:
        raise ValueError("active_ratios must have an epoch axis")
    justified = ratios >= supermajority

    def first_true(mask: np.ndarray) -> np.ndarray:
        if mask.shape[-1] == 0:
            return np.full(mask.shape[:-1], -1, dtype=np.int64)
        found = mask.any(axis=-1)
        index = mask.argmax(axis=-1)
        return np.where(found, index, -1).astype(np.int64)

    consecutive = justified[..., 1:] & justified[..., :-1]
    first_consecutive = first_true(consecutive)
    return RatioFinality(
        justified=justified,
        threshold_epoch=first_true(justified),
        finalization_epoch=np.where(
            first_consecutive >= 0, first_consecutive + 1, -1
        ).astype(np.int64),
    )


@dataclass
class FinalityTracker:
    """Justification/finalization bookkeeping of one simulated branch.

    Mirrors the FFG rule the paper analyses: an epoch is *justified* when
    the active-stake ratio reaches the supermajority (the
    :func:`justified_at` test), and two consecutive justified epochs
    finalize (the first of the pair, reported at the second).  Tracks the
    first threshold crossing and the first finalization.  This is the
    streaming counterpart of :func:`finality_from_ratios`.
    """

    supermajority: float
    threshold_epoch: Optional[int] = None
    finalization_epoch: Optional[int] = None
    finalized: bool = False
    previous_justified: bool = False
    previous_active_ratio: float = 0.0

    @classmethod
    def for_config(cls, config: "Optional[SpecConfig]" = None) -> "FinalityTracker":
        from repro.spec.config import SpecConfig

        cfg = config or SpecConfig.mainnet()
        return cls(supermajority=cfg.supermajority_fraction)

    def observe(self, epoch: int, active_ratio: float) -> Tuple[bool, bool]:
        """Record one epoch's active ratio; returns ``(justified, finalized_now)``."""
        justified = justified_at(active_ratio, self.supermajority)
        finalized_now = False
        if justified and self.threshold_epoch is None:
            self.threshold_epoch = epoch
        if justified and self.previous_justified and not self.finalized:
            self.finalized = True
            finalized_now = True
            self.finalization_epoch = epoch
        self.previous_justified = justified
        self.previous_active_ratio = active_ratio
        return justified, finalized_now


class BatchedFinalityTracker:
    """:class:`FinalityTracker` over a whole batch of trials at once.

    Holds the streaming justification/finalization state of ``trials``
    independent branches as flat arrays and consumes one ``(trials,)``
    ratio vector per epoch.  Element ``t`` evolves exactly like a scalar
    :class:`FinalityTracker` fed trial ``t``'s ratios (asserted by the
    core FFG tests); epochs never observed report ``-1`` instead of
    ``None`` so the state stays a fixed-dtype array.
    """

    def __init__(self, supermajority: float, trials: int) -> None:
        if trials < 0:
            raise ValueError("trials must be non-negative")
        self.supermajority = supermajority
        self.trials = trials
        self.threshold_epoch = np.full(trials, -1, dtype=np.int64)
        self.finalization_epoch = np.full(trials, -1, dtype=np.int64)
        self.finalized = np.zeros(trials, dtype=bool)
        self.previous_justified = np.zeros(trials, dtype=bool)
        self.previous_active_ratio = np.zeros(trials, dtype=float)

    @classmethod
    def for_config(
        cls, trials: int, config: "Optional[SpecConfig]" = None
    ) -> "BatchedFinalityTracker":
        from repro.spec.config import SpecConfig

        cfg = config or SpecConfig.mainnet()
        return cls(supermajority=cfg.supermajority_fraction, trials=trials)

    def observe(
        self, epoch: int, active_ratios: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Record one epoch's ratios; returns ``(justified, finalized_now)`` masks."""
        ratios = np.asarray(active_ratios, dtype=float)
        if ratios.shape != (self.trials,):
            raise ValueError(
                f"expected ({self.trials},) active ratios, got shape {ratios.shape}"
            )
        justified = ratios >= self.supermajority
        crossed = justified & (self.threshold_epoch < 0)
        self.threshold_epoch[crossed] = epoch
        finalized_now = justified & self.previous_justified & ~self.finalized
        self.finalization_epoch[finalized_now] = epoch
        self.finalized |= finalized_now
        self.previous_justified = justified
        self.previous_active_ratio = ratios
        return justified, finalized_now
