"""repro — reproduction of "Byzantine Attacks Exploiting Penalties in Ethereum PoS".

The package is organised in layers:

* :mod:`repro.core` — the shared stake-dynamics engine: one vectorized
  implementation of the inactivity-score and penalty rules (Equations 1–2,
  score floor, ejection) with numpy/python backends, plus the seeded
  parallel trial runner every Monte-Carlo experiment uses.
* :mod:`repro.spec` — a from-scratch Gasper-style protocol substrate
  (blocks, attestations, fork choice, FFG finality, incentives, the
  inactivity leak, slashing).
* :mod:`repro.network` — partially-synchronous message passing with
  partitions, GST, and a coordinating adversary.
* :mod:`repro.agents` / :mod:`repro.sim` — validator behaviours (honest and
  Byzantine attack strategies) driven by a slot-level simulation engine.
* :mod:`repro.leak` — epoch-level aggregate leak dynamics (discrete ground
  truth) and the paper's continuous stake functions.
* :mod:`repro.analysis` — the paper's analytical results: conflicting
  finalization times, the one-third threshold region, and the probabilistic
  bouncing attack under penalties.
* :mod:`repro.experiments` — one runnable experiment per table and figure.
"""

from repro.analysis import (
    BouncingAttackModel,
    BouncingStakeDistribution,
    ByzantineStrategy,
    conflicting_finalization_time,
    critical_beta0,
    epochs_to_conflicting_finalization,
    run_all_scenarios,
)
from repro.leak import (
    Behavior,
    GroupSpec,
    LeakSimulation,
    StakeTrajectory,
    active_ratio_honest_only,
    sample_trajectory,
)
from repro.sim import (
    SimulationEngine,
    build_honest_simulation,
    build_partitioned_simulation,
)
from repro.spec import BeaconState, SpecConfig, Store, Validator, make_registry

__version__ = "1.0.0"

__all__ = [
    "BeaconState",
    "Behavior",
    "BouncingAttackModel",
    "BouncingStakeDistribution",
    "ByzantineStrategy",
    "GroupSpec",
    "LeakSimulation",
    "SimulationEngine",
    "SpecConfig",
    "StakeTrajectory",
    "Store",
    "Validator",
    "__version__",
    "active_ratio_honest_only",
    "build_honest_simulation",
    "build_partitioned_simulation",
    "conflicting_finalization_time",
    "critical_beta0",
    "epochs_to_conflicting_finalization",
    "make_registry",
    "run_all_scenarios",
    "sample_trajectory",
]
