"""Protocol-level constants used throughout the reproduction.

The values mirror the Ethereum consensus parameters that the paper's
analysis depends on (Section 3 and Section 4 of the paper).  Everything
that the paper treats as a tunable (initial stake, ejection balance,
inactivity quotients, epochs before the leak starts) is also exposed on
:class:`repro.spec.config.SpecConfig` so experiments can scale the system
down; the module-level constants are the mainnet reference values.
"""

from __future__ import annotations

#: Number of seconds in a slot (the paper, Section 2).
SECONDS_PER_SLOT: int = 12

#: Number of slots per epoch (the paper, Section 2).
SLOTS_PER_EPOCH: int = 32

#: Seconds per epoch, derived.
SECONDS_PER_EPOCH: int = SECONDS_PER_SLOT * SLOTS_PER_EPOCH

#: Initial (and maximum effective) stake of a validator, in ETH.
MAX_EFFECTIVE_BALANCE_ETH: float = 32.0

#: Validators whose stake falls to or below this value are ejected
#: (the paper, Section 4.3 and Figure 2 use 16.75 ETH).
EJECTION_BALANCE_ETH: float = 16.75

#: Amount added to the inactivity score of an inactive validator each epoch
#: during the leak (Equation 1).
INACTIVITY_SCORE_BIAS: int = 4

#: Amount subtracted from the inactivity score of an active validator each
#: epoch (Equation 1).
INACTIVITY_SCORE_RECOVERY_PER_EPOCH: int = 1

#: Amount subtracted from every inactivity score per epoch when the chain is
#: *not* in an inactivity leak (Section 4.1: "inactivity scores are decreased
#: by 16").
INACTIVITY_SCORE_RECOVERY_RATE_NO_LEAK: int = 16

#: Denominator of the per-epoch inactivity penalty: the penalty applied to a
#: validator with inactivity score ``I`` and stake ``s`` is ``I * s / 2**26``
#: (Equation 2).  In the Ethereum spec this is the product of the inactivity
#: score bias (4) and the Bellatrix inactivity penalty quotient (2**24).
INACTIVITY_PENALTY_QUOTIENT: int = 2 ** 26

#: Number of consecutive epochs without finalization after which the
#: inactivity leak starts (Section 3.3 / Section 4).
MIN_EPOCHS_TO_INACTIVITY_PENALTY: int = 4

#: Fraction of the stake a slashed validator immediately loses
#: (simplified minimum slashing penalty: 1/32 of the effective balance).
MIN_SLASHING_PENALTY_FRACTION: float = 1.0 / 32.0

#: Supermajority threshold used by the FFG finality gadget.
SUPERMAJORITY_NUMERATOR: int = 2
SUPERMAJORITY_DENOMINATOR: int = 3

#: The FFG supermajority threshold as a float (2/3 on mainnet), derived.
SUPERMAJORITY_FRACTION: float = SUPERMAJORITY_NUMERATOR / SUPERMAJORITY_DENOMINATOR

#: Safety threshold on the Byzantine stake proportion.
BYZANTINE_SAFETY_THRESHOLD: float = 1.0 / 3.0

#: Reference ejection epochs reported by the paper (Figure 2): the epoch at
#: which a fully inactive validator (resp. a semi-active validator) starting
#: at 32 ETH crosses the ejection balance during a leak that never ends.
PAPER_INACTIVE_EJECTION_EPOCH: int = 4685
PAPER_SEMI_ACTIVE_EJECTION_EPOCH: int = 7652

#: Ejection epoch of the Byzantine (semi-active) validators reported in the
#: probabilistic bouncing analysis (Section 5.3).
PAPER_BOUNCING_BYZANTINE_EJECTION_EPOCH: int = 7653

#: Number of leading slots of an epoch in which a Byzantine proposer must be
#: elected for the probabilistic bouncing attack to continue (protocol
#: parameter ``j`` in Section 5.3).  Ethereum uses 8 for the relevant
#: fork-choice parameter, which is also the value the paper plugs into its
#: numerical example.
BOUNCING_ATTACK_WINDOW_SLOTS: int = 8
