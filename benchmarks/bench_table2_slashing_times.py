"""Benchmark + reproduction check for Table 2 (slashable Byzantine strategy).

Paper values (p0 = 0.5): beta0 -> epochs to conflicting finalization
0 -> 4685, 0.1 -> 4066, 0.15 -> 3622, 0.2 -> 3107, 0.33 -> 502.
"""

import pytest

from repro.experiments import table2_slashing_times


@pytest.mark.benchmark(group="table2")
def test_table2_analytical(benchmark):
    result = benchmark(table2_slashing_times.run, (0.0, 0.1, 0.15, 0.2, 0.33), 0.5, False, 6000)
    for row in result.rows():
        assert row["epochs_analytical"] == row["epochs_paper"]
    print()
    print(result.format_text())


@pytest.mark.benchmark(group="table2")
def test_table2_with_simulation_cross_check(benchmark):
    result = benchmark(table2_slashing_times.run, (0.2, 0.33), 0.5, True, 4500)
    for row in result.rows():
        assert row["epochs_simulated"] == pytest.approx(row["epochs_analytical"], rel=0.03)
    print()
    print(result.format_text())
