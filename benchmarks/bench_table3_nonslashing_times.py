"""Benchmark + reproduction check for Table 3 (non-slashable Byzantine strategy).

Paper values (p0 = 0.5): beta0 -> epochs to conflicting finalization
0 -> 4685, 0.1 -> 4221, 0.15 -> 3819, 0.2 -> 3328, 0.33 -> 556.
The middle rows land within 1% of the paper's own numerical solution of
Equation 10; the 0 and 0.33 rows match exactly.
"""

import pytest

from repro.experiments import table3_nonslashing_times


@pytest.mark.benchmark(group="table3")
def test_table3_analytical(benchmark):
    result = benchmark(
        table3_nonslashing_times.run, (0.0, 0.1, 0.15, 0.2, 0.33), 0.5, False, 6000
    )
    for row in result.rows():
        assert row["epochs_analytical"] == pytest.approx(row["epochs_paper"], rel=0.01)
    measured = {row["beta0"]: row["epochs_analytical"] for row in result.rows()}
    assert measured[0.0] == 4685
    assert measured[0.33] == 556
    print()
    print(result.format_text())


@pytest.mark.benchmark(group="table3")
def test_table3_with_simulation_cross_check(benchmark):
    result = benchmark(table3_nonslashing_times.run, (0.33,), 0.5, True, 1200)
    row = result.rows()[0]
    assert row["epochs_simulated"] == pytest.approx(row["epochs_analytical"], rel=0.05)
    print()
    print(result.format_text())
