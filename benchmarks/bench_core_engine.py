"""Benchmark: vectorized vs loop epoch-update throughput in the core kernel.

The ``"numpy"`` backend must beat the pure-Python reference by at least an
order of magnitude on populations the Monte-Carlo layer batches (tens of
thousands of validator-slots per call) — this is the ≥10x speedup the
`repro.core` refactor is accountable for.  Both backends are first checked
to produce bit-identical trajectories, so the comparison times the same
semantics.
"""

import time

import numpy as np
import pytest

from repro.core.backend import StakeRules, get_backend
from repro.spec.config import SpecConfig

#: Faster-leaking configuration so ejections actually occur in-bench.
FAST = SpecConfig.mainnet().with_overrides(inactivity_penalty_quotient=2 ** 16)

POPULATION = 20_000
EPOCHS = 30


def _run_epochs(kernel, rules, stakes, scores, ejected, activity):
    for active in activity:
        outcome = kernel.epoch_update(stakes, scores, active, ejected, rules)
        stakes, scores, ejected = outcome.stakes, outcome.scores, outcome.ejected
    return stakes, scores, ejected


def _fixture(seed=0):
    rng = np.random.default_rng(seed)
    stakes = np.full(POPULATION, FAST.max_effective_balance)
    scores = np.zeros(POPULATION)
    ejected = np.zeros(POPULATION, dtype=bool)
    activity = [rng.random(POPULATION) < 0.5 for _ in range(EPOCHS)]
    return stakes, scores, ejected, activity


@pytest.mark.benchmark(group="core-engine")
def test_numpy_backend_throughput(benchmark):
    rules = StakeRules.from_config(FAST)
    kernel = get_backend("numpy")
    stakes, scores, ejected, activity = _fixture()
    final = benchmark.pedantic(
        _run_epochs,
        args=(kernel, rules, stakes, scores, ejected, activity),
        rounds=3,
        iterations=1,
    )
    assert final[0].shape == (POPULATION,)


@pytest.mark.benchmark(group="core-engine")
def test_python_backend_throughput(benchmark):
    rules = StakeRules.from_config(FAST)
    kernel = get_backend("python")
    stakes, scores, ejected, activity = _fixture()
    final = benchmark.pedantic(
        _run_epochs,
        args=(kernel, rules, stakes, scores, ejected, activity),
        rounds=1,
        iterations=1,
    )
    assert final[0].shape == (POPULATION,)


def test_numpy_backend_at_least_10x_faster_and_bit_identical():
    """The acceptance check: >=10x on identical seeded trajectories.

    The numpy region is a few milliseconds, so a single unwarmed reading is
    at the mercy of scheduler noise on shared CI runners; take the best of
    several rounds (after a warmup) before asserting the ratio.  The
    headroom is large — the measured ratio is ~70x.
    """
    rules = StakeRules.from_config(FAST)
    timings = {}
    finals = {}
    for name, rounds in (("numpy", 5), ("python", 1)):
        kernel = get_backend(name)
        stakes, scores, ejected, activity = _fixture(seed=1)
        kernel.epoch_update(stakes, scores, activity[0], ejected, rules)  # warmup
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            finals[name] = _run_epochs(kernel, rules, stakes, scores, ejected, activity)
            best = min(best, time.perf_counter() - start)
        timings[name] = best
    for a, b in zip(finals["numpy"], finals["python"]):
        assert np.array_equal(a, b)
    speedup = timings["python"] / timings["numpy"]
    print(
        f"\ncore epoch-update: numpy {timings['numpy']*1e3:.1f}ms, "
        f"python {timings['python']*1e3:.1f}ms -> {speedup:.0f}x"
    )
    assert speedup >= 10.0
