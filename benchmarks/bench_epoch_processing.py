"""Benchmark: array-native vs loop throughput of the combined epoch update.

One simulated epoch now chains three kernels — attestation
rewards/penalties, the inactivity leak (Equations 1–2, floor, ejection)
and slashing — all running on flat arrays.  The ``"numpy"`` backend must
beat the pure-Python loop reference by at least an order of magnitude on
sim-scale populations; both backends are first checked to produce
bit-identical trajectories, so the comparison times the same semantics.
This is the accountability check for the PR that ported ``spec/rewards``
and ``spec/slashing`` onto ``repro.core``.
"""

import time

import numpy as np
import pytest

from repro.core.backend import RewardRules, SlashingRules, StakeRules, get_backend
from repro.spec.config import SpecConfig

#: Faster-leaking configuration so ejections actually occur in-bench.
FAST = SpecConfig.mainnet().with_overrides(inactivity_penalty_quotient=2 ** 16)

POPULATION = 20_000
EPOCHS = 20

STAKE_RULES = StakeRules.from_config(FAST)
REWARD_RULES = RewardRules.from_config(FAST)
SLASHING_RULES = SlashingRules.from_config(FAST)


def _run_epochs(kernel, stakes, scores, ejected, slashed, epoch_inputs):
    """Drive EPOCHS full epochs: rewards, leak dynamics, slashings."""
    for active, slashable, in_leak in epoch_inputs:
        rewards = kernel.attestation_rewards_epoch_update(
            stakes, active, ejected | slashed, REWARD_RULES, in_leak
        )
        stakes = rewards.stakes
        outcome = kernel.epoch_update(
            stakes, scores, active, ejected, STAKE_RULES, in_leak
        )
        stakes, scores, ejected = outcome.stakes, outcome.scores, outcome.ejected
        slashing = kernel.slashing_epoch_update(
            stakes, slashable, slashed, ejected, SLASHING_RULES
        )
        stakes, slashed = slashing.stakes, slashing.slashed
        ejected = ejected | slashing.newly_slashed
    return stakes, scores, ejected, slashed


def _fixture(seed=0):
    rng = np.random.default_rng(seed)
    stakes = np.full(POPULATION, FAST.max_effective_balance)
    scores = np.zeros(POPULATION)
    ejected = np.zeros(POPULATION, dtype=bool)
    slashed = np.zeros(POPULATION, dtype=bool)
    epoch_inputs = [
        (
            rng.random(POPULATION) < 0.5,
            rng.random(POPULATION) < 0.001,
            epoch % 4 != 0,  # a few no-leak epochs exercise the reward path
        )
        for epoch in range(EPOCHS)
    ]
    return stakes, scores, ejected, slashed, epoch_inputs


@pytest.mark.benchmark(group="epoch-processing")
def test_numpy_epoch_processing_throughput(benchmark):
    kernel = get_backend("numpy")
    stakes, scores, ejected, slashed, epoch_inputs = _fixture()
    final = benchmark.pedantic(
        _run_epochs,
        args=(kernel, stakes, scores, ejected, slashed, epoch_inputs),
        rounds=3,
        iterations=1,
    )
    assert final[0].shape == (POPULATION,)


@pytest.mark.benchmark(group="epoch-processing")
def test_python_epoch_processing_throughput(benchmark):
    kernel = get_backend("python")
    stakes, scores, ejected, slashed, epoch_inputs = _fixture()
    final = benchmark.pedantic(
        _run_epochs,
        args=(kernel, stakes, scores, ejected, slashed, epoch_inputs),
        rounds=1,
        iterations=1,
    )
    assert final[0].shape == (POPULATION,)


def test_numpy_at_least_10x_faster_and_bit_identical():
    """The acceptance check: >=10x on identical seeded trajectories.

    The numpy region is a few milliseconds per epoch, so single unwarmed
    readings are noisy on shared CI runners; take the best of several
    rounds (after a warmup) before asserting the ratio.
    """
    timings = {}
    finals = {}
    for name, rounds in (("numpy", 5), ("python", 1)):
        kernel = get_backend(name)
        stakes, scores, ejected, slashed, epoch_inputs = _fixture(seed=1)
        _run_epochs(kernel, stakes, scores, ejected, slashed, epoch_inputs[:1])  # warmup
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            finals[name] = _run_epochs(
                kernel, stakes, scores, ejected, slashed, epoch_inputs
            )
            best = min(best, time.perf_counter() - start)
        timings[name] = best
    for a, b in zip(finals["numpy"], finals["python"]):
        assert np.array_equal(a, b)
    assert finals["numpy"][2].any()  # someone left the active set
    assert finals["numpy"][3].any()  # someone got slashed
    speedup = timings["python"] / timings["numpy"]
    print(
        f"\ncombined epoch processing: numpy {timings['numpy']*1e3:.1f}ms, "
        f"python {timings['python']*1e3:.1f}ms -> {speedup:.0f}x"
    )
    assert speedup >= 10.0
