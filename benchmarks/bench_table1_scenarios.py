"""Benchmark + reproduction check for Table 1 (the five analysed scenarios)."""

import pytest

from repro.experiments import table1_scenarios


@pytest.mark.benchmark(group="table1")
def test_table1_scenarios(benchmark):
    result = benchmark(table1_scenarios.run, 0.33, 0.25, 0.5, 6000)
    # Every scenario reproduces the qualitative outcome of the paper's Table 1.
    assert result.matches_paper()
    rows = {row["scenario"]: row for row in result.rows()}
    assert rows["5.1"]["conflicting_finalization_epoch"] is not None
    assert rows["5.2.1"]["conflicting_finalization_epoch"] is not None
    assert (
        rows["5.2.1"]["conflicting_finalization_epoch"]
        < rows["5.1"]["conflicting_finalization_epoch"]
    )
    assert rows["5.2.3"]["max_byzantine_proportion"] > 1 / 3
    print()
    print(result.format_text())
