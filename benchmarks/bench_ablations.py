"""Benchmarks for the ablation studies (beyond the paper's own figures).

1. Discrete vs continuous stake model (explains the 4661-vs-4685 gap).
2. Sensitivity of the Table-2/3 crossing times to the honest split p0.
3. The footnote-12 corner case (finalize early vs wait for the ejection).
"""

import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark):
    result = benchmark(ablations.run, 0.33, (0.3, 0.4, 0.5, 0.6, 0.7), (50, 200, 500, 1000))

    # 1. The discrete and continuous ejection epochs agree within 1.5%.
    for row in result.ejection_model.rows():
        if row["continuous"] is None or row["discrete"] is None:
            continue
        assert abs(row["discrete"] - row["continuous"]) / row["continuous"] < 0.015

    # 2. The even split is the fastest way to conflicting finalization for
    # both strategies; moving p0 away from 0.5 slows the slower branch down.
    sensitivity = {row["p0"]: row for row in result.split_sensitivity.rows()}
    assert sensitivity[0.5]["epochs_slashing"] <= sensitivity[0.3]["epochs_slashing"]
    assert sensitivity[0.5]["epochs_non_slashing"] <= sensitivity[0.7]["epochs_non_slashing"]

    # 3. Waiting for the honest ejection maximises the Byzantine proportion.
    corner_rows = result.early_finalization.rows()
    at_ejection = corner_rows[0]["byzantine_proportion"]
    assert all(row["byzantine_proportion"] <= at_ejection + 1e-9 for row in corner_rows)

    print()
    print(result.format_text())
