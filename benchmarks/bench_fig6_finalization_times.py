"""Benchmark + reproduction check for Figure 6 (crossing time vs beta0, both strategies)."""

import pytest

from repro.experiments import fig6_finalization_times


@pytest.mark.benchmark(group="fig6")
def test_fig6_finalization_times(benchmark):
    result = benchmark(fig6_finalization_times.run, 0.33, 67, 0.5)
    # Shape: both curves start at the honest-only bound (4685) and fall as
    # beta0 grows; the slashing strategy is always at least as fast as the
    # non-slashable one; both collapse towards ~0 as beta0 approaches 1/3.
    assert result.slashing_epochs[0] == pytest.approx(4685.0)
    assert result.non_slashing_epochs[0] == pytest.approx(4685.0)
    assert result.non_slashing_always_slower()
    assert result.slashing_epochs[-1] < 600
    assert result.non_slashing_epochs[-1] < 600
    assert all(b <= a + 1e-9 for a, b in zip(result.slashing_epochs, result.slashing_epochs[1:]))
    print()
    print(result.format_text())
