"""Benchmark-suite configuration.

Makes ``src/`` importable without installation and keeps pytest-benchmark
output compact (the benches double as reproduction checks: each one asserts
the paper-facing shape of its result in addition to timing the run).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
