"""Benchmarks of the trial-parallel sweep engine and the result cache.

Two accountability gates for the PR-9 execution layer:

* **Parallel throughput** — a 64-trial balancing-attack sweep (128
  validators, 2 epochs) must run >=3x faster at ``jobs=4`` than serially,
  on byte-identical rows.  The speedup assertion needs real cores, so it
  is skipped (after still recording the measured numbers) on machines
  with fewer than 4 CPUs; the byte-identity assertion always runs.
* **Cache replay** — repeating the same sweep through the
  content-addressed result cache must be served from disk >=20x faster
  than the cold computation, again on byte-identical rows.

Timing results (trials/sec, parallel efficiency, cache hit rate) are
accumulated into the machine-readable ``BENCH_sweeps.json`` artifact
that CI uploads next to ``BENCH_slot_sim.json`` and ``BENCH_fig10.json``.
"""

import json
import os
import pathlib
import time

import pytest

from repro.cache import ResultCache
from repro.sim.sweeps import ScenarioSpec, run_sweep, run_sweep_cached

N_TRIALS = 64
PARALLEL_JOBS = 4

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_sweeps.json"

#: The benchmark workload: one seeded balancing-attack scenario, heavy
#: enough (~100ms/trial) that dispatch overhead is noise but the whole
#: sweep still finishes in seconds.
SPEC = ScenarioSpec(
    builder="balancing",
    kwargs={"n_validators": 128, "byzantine_fraction": 0.2, "sway_delay": 2.0},
    epochs=2,
    seed="bench-sweeps",
)


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark section into the JSON artifact (any test order)."""
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _timed_sweep(jobs):
    start = time.perf_counter()
    result = run_sweep(SPEC, N_TRIALS, jobs=jobs)
    return time.perf_counter() - start, result


def test_parallel_sweep_at_least_3x_faster():
    """The tentpole gate: >=3x at ``jobs=4`` on byte-identical rows."""
    serial_time, serial = _timed_sweep(jobs=1)
    parallel_time, parallel = _timed_sweep(jobs=PARALLEL_JOBS)
    # Identical rows first: parallelism must not change the sweep.
    assert json.dumps(serial.rows()) == json.dumps(parallel.rows())
    speedup = serial_time / parallel_time
    efficiency = speedup / PARALLEL_JOBS
    print(
        f"\nsweep ({N_TRIALS} trials, 128 validators, 2 epochs): "
        f"serial {serial_time:.2f}s ({N_TRIALS / serial_time:.1f} trials/s), "
        f"jobs={PARALLEL_JOBS} {parallel_time:.2f}s "
        f"({N_TRIALS / parallel_time:.1f} trials/s, {speedup:.2f}x, "
        f"{efficiency:.0%} efficiency)"
    )
    _record(
        "parallel",
        {
            "n_trials": N_TRIALS,
            "n_validators": 128,
            "epochs": 2,
            "jobs": PARALLEL_JOBS,
            "cpu_count": os.cpu_count(),
            "serial_seconds": serial_time,
            "parallel_seconds": parallel_time,
            "serial_trials_per_second": N_TRIALS / serial_time,
            "parallel_trials_per_second": N_TRIALS / parallel_time,
            "speedup": speedup,
            "parallel_efficiency": efficiency,
        },
    )
    if (os.cpu_count() or 1) < PARALLEL_JOBS:
        pytest.skip(
            f"speedup gate needs >= {PARALLEL_JOBS} cores "
            f"(found {os.cpu_count()}); rows verified and timings recorded"
        )
    assert speedup >= 3.0


def test_cache_replay_at_least_20x_faster(tmp_path):
    """The cache gate: a repeated sweep is a disk read, >=20x faster."""
    cache = ResultCache(tmp_path)
    start = time.perf_counter()
    cold, cold_hit = run_sweep_cached([SPEC], N_TRIALS, cache, jobs=1)
    cold_time = time.perf_counter() - start
    start = time.perf_counter()
    warm, warm_hit = run_sweep_cached([SPEC], N_TRIALS, cache, jobs=1)
    warm_time = time.perf_counter() - start
    assert not cold_hit and warm_hit
    # Replay must be indistinguishable from the computation.
    assert json.dumps(cold.rows()) == json.dumps(warm.rows())
    speedup = cold_time / warm_time
    print(
        f"\ncache replay ({N_TRIALS} trials): cold {cold_time:.2f}s, "
        f"warm {warm_time * 1e3:.1f}ms ({speedup:.0f}x), "
        f"hit rate {cache.stats.hit_rate:.0%}"
    )
    _record(
        "cache",
        {
            "n_trials": N_TRIALS,
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "replay_speedup": speedup,
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "hit_rate": cache.stats.hit_rate,
        },
    )
    assert speedup >= 20.0
