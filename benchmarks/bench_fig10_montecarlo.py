"""Benchmark + validation: Monte-Carlo check of the Figure-10 closed form.

The discrete per-validator simulation (score floor, ejection, 32-ETH cap,
no Gaussian approximation) is compared against Equation 24.  At beta0 = 1/3
the single-branch closed form sits at 0.5 and the two-branch probability at
~1; the empirical either-branch probability must land near the latter.
"""

import pytest

from repro.experiments import fig10_montecarlo


@pytest.mark.benchmark(group="fig10-montecarlo")
def test_fig10_montecarlo_validation(benchmark):
    result = benchmark.pedantic(
        fig10_montecarlo.run,
        kwargs={
            "beta0_values": (1.0 / 3.0, 0.33),
            "horizon": 2500,
            "n_trials": 30,
            "n_honest": 150,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    rows = {row["beta0"]: row for row in result.horizon_rows()}
    assert rows[1.0 / 3.0]["closed_form_single_branch"] == pytest.approx(0.5, abs=1e-3)
    assert rows[1.0 / 3.0]["empirical_either_branch"] > 0.8
    assert (
        rows[0.33]["empirical_either_branch"]
        <= rows[1.0 / 3.0]["empirical_either_branch"] + 1e-9
    )
    print()
    print(result.format_text())
