"""Benchmark + validation: Monte-Carlo check of the Figure-10 closed form.

Three layers:

* ``test_fig10_montecarlo_validation`` — the discrete per-validator
  simulation (score floor, ejection, 32-ETH cap, no Gaussian
  approximation) compared against Equation 24.  At beta0 = 1/3 the
  single-branch closed form sits at 0.5 and the two-branch probability at
  ~1; the empirical either-branch probability must land near the latter.
* ``test_batched_speedup_vs_per_trial`` — the trial-batched kernel path
  (``batch`` trials per ``epoch_update`` call) against the per-trial
  baseline (``chunk_size=1, batch=1``: one kernel call per trial per
  epoch).  Asserts >=10x and byte-identical results, and writes the
  machine-readable ``BENCH_fig10.json`` artifact (trials/sec, speedup,
  workload) that CI uploads.
* ``test_mainnet_scale_gap_demo`` — the CI-feasible mainnet-scale
  demonstration workload (10^4 trials x 10^4 validators) reporting the
  closed-form-vs-empirical gap per (p0, beta0) point.  Skipped unless
  ``MONTECARLO_SCALE=1`` (it takes tens of seconds; the fast jobs only
  run the two tests above).

The timing assertions use ``time.perf_counter`` directly rather than the
``benchmark`` fixture so they still run under ``--benchmark-disable``
(how CI invokes this file).
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.analysis.montecarlo import BouncingMonteCarlo
from repro.experiments import fig10_montecarlo
from repro.spec.config import SpecConfig

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_fig10.json"

# Speedup workload: small enough to finish in ~1s even on the per-trial
# baseline, large enough that kernel dispatch (not RNG) dominates it.
SPEEDUP_WORKLOAD = {
    "beta0": 1.0 / 3.0,
    "n_honest": 64,
    "n_trials": 256,
    "horizon": 100,
    "seed": 0,
}
MIN_SPEEDUP = 10.0


def _best_of(repeats, fn):
    """Best-of-N wall time: robust against scheduler noise on shared CI."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _trials_identical(first, second):
    assert len(first.trials) == len(second.trials)
    for a, b in zip(first.trials, second.trials):
        assert a.stop_epoch == b.stop_epoch
        assert a.byzantine_proportion_branch_a == b.byzantine_proportion_branch_a
        assert a.byzantine_proportion_branch_b == b.byzantine_proportion_branch_b


@pytest.mark.benchmark(group="fig10-montecarlo")
def test_fig10_montecarlo_validation(benchmark):
    result = benchmark.pedantic(
        fig10_montecarlo.run,
        kwargs={
            "beta0_values": (1.0 / 3.0, 0.33),
            "horizon": 2500,
            "n_trials": 30,
            "n_honest": 150,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    rows = {row["beta0"]: row for row in result.horizon_rows()}
    assert rows[1.0 / 3.0]["closed_form_single_branch"] == pytest.approx(0.5, abs=1e-3)
    assert rows[1.0 / 3.0]["empirical_either_branch"] > 0.8
    assert (
        rows[0.33]["empirical_either_branch"]
        <= rows[1.0 / 3.0]["empirical_either_branch"] + 1e-9
    )
    print()
    print(result.format_text())


@pytest.mark.benchmark(group="fig10-montecarlo")
def test_batched_speedup_vs_per_trial():
    fast = SpecConfig.mainnet().with_overrides(inactivity_penalty_quotient=2 ** 16)
    monte_carlo = BouncingMonteCarlo(
        beta0=SPEEDUP_WORKLOAD["beta0"],
        n_honest=SPEEDUP_WORKLOAD["n_honest"],
        config=fast,
        enforce_stopping=False,
        seed=SPEEDUP_WORKLOAD["seed"],
    )
    n_trials = SPEEDUP_WORKLOAD["n_trials"]
    horizon = SPEEDUP_WORKLOAD["horizon"]
    monte_carlo.run(n_trials=8, horizon=10)  # warm caches / allocators

    # Per-trial baseline: one chunk and one kernel batch per trial, i.e.
    # the pre-batching execution model.
    per_trial_seconds, per_trial = _best_of(
        2, lambda: monte_carlo.run(n_trials=n_trials, horizon=horizon, chunk_size=1, batch=1)
    )
    # Batched path: default chunk plan, cache-budgeted kernel batch.
    batched_seconds, batched = _best_of(
        3, lambda: monte_carlo.run(n_trials=n_trials, horizon=horizon)
    )
    speedup = per_trial_seconds / batched_seconds

    # Byte-identity is pinned on an equal chunk plan (RNG streams are a
    # function of (n_trials, chunk_size, seed)): stacking every
    # single-trial chunk into one kernel batch must reproduce the
    # per-trial baseline exactly, including the exceed curve.
    grouped = monte_carlo.run(
        n_trials=n_trials, horizon=horizon, chunk_size=1, batch=n_trials
    )
    _trials_identical(per_trial, grouped)
    record = [horizon // 2, horizon]
    assert np.array_equal(
        [per_trial.exceed_probability(epoch) for epoch in record],
        [grouped.exceed_probability(epoch) for epoch in record],
    )

    payload = {
        "workload": dict(SPEEDUP_WORKLOAD, backend="numpy"),
        "n_validators": SPEEDUP_WORKLOAD["n_honest"] + 1,
        "per_trial_seconds": per_trial_seconds,
        "batched_seconds": batched_seconds,
        "per_trial_trials_per_second": n_trials / per_trial_seconds,
        "batched_trials_per_second": n_trials / batched_seconds,
        "speedup": speedup,
        "min_speedup_asserted": MIN_SPEEDUP,
        "default_batch": monte_carlo.default_batch(n_trials),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(
        f"per-trial {per_trial_seconds:.3f}s "
        f"({payload['per_trial_trials_per_second']:.0f} trials/s)  "
        f"batched {batched_seconds:.3f}s "
        f"({payload['batched_trials_per_second']:.0f} trials/s)  "
        f"speedup {speedup:.1f}x  -> {RESULTS_PATH.name}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched path only {speedup:.1f}x faster than per-trial "
        f"(expected >= {MIN_SPEEDUP}x): "
        f"per-trial {per_trial_seconds:.3f}s vs batched {batched_seconds:.3f}s"
    )


@pytest.mark.benchmark(group="fig10-montecarlo")
def test_mainnet_scale_gap_demo():
    if os.environ.get("MONTECARLO_SCALE") != "1":
        pytest.skip("mainnet-scale demo runs only with MONTECARLO_SCALE=1")
    start = time.perf_counter()
    result = fig10_montecarlo.run(
        beta0_values=(1.0 / 3.0, 0.33),
        p0=0.5,
        horizon=12,
        n_trials=10_000,
        n_honest=10_000,
        record_every=4,
        seed=0,
    )
    elapsed = time.perf_counter() - start
    gaps = {
        (result.p0, row["beta0"]): abs(
            row["closed_form_both_branches"] - row["empirical_either_branch"]
        )
        for row in result.horizon_rows()
    }
    print()
    print(result.format_text())
    for (p0, beta0), gap in gaps.items():
        print(f"  gap @ (p0={p0}, beta0={beta0:.4f}): {gap:.4f}")
    print(f"  10^4 trials x 10^4 validators in {elapsed:.1f}s")
    # 10^4 trials put the Monte-Carlo error near 10^-2; the short horizon
    # keeps both probabilities well inside (0, 1) so the bound is tight
    # but honest.
    assert all(gap <= 0.05 for gap in gaps.values())
    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
        payload["mainnet_scale"] = {
            "n_trials": result.n_trials,
            "n_validators": result.n_honest + 1,
            "horizon": result.horizon,
            "seconds": elapsed,
            "gaps": {
                f"p0={p0},beta0={beta0:.4f}": gap
                for (p0, beta0), gap in gaps.items()
            },
        }
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
