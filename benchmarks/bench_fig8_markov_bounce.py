"""Benchmark + reproduction check for Figure 8 (Markov bounce model, Equation 15)."""

import pytest

from repro.experiments import fig8_markov_bounce


@pytest.mark.benchmark(group="fig8")
def test_fig8_markov_bounce(benchmark):
    result = benchmark(fig8_markov_bounce.run, (0.5, 0.55, 0.6, 0.66))
    for p0 in result.p0_values:
        # The two-epoch paths and the Equation-15 increments are probability laws.
        assert sum(result.path_probabilities[p0].values()) == pytest.approx(1.0)
        assert sum(result.increment_distributions[p0].values()) == pytest.approx(1.0)
        # The mean score increment is +3 per two epochs (V = 3/2), for every p0.
        assert result.mean_two_epoch_increment[p0] == pytest.approx(3.0)
    even = result.increment_distributions[0.5]
    assert even[8] == pytest.approx(0.25) and even[3] == pytest.approx(0.5)
    print()
    print(result.format_text())
