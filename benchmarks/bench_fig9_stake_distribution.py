"""Benchmark + reproduction check for Figure 9 (stake distribution at t=4024)."""

import pytest

from repro.experiments import fig9_stake_distribution
from repro.leak.stake import semi_active_stake


@pytest.mark.benchmark(group="fig9")
def test_fig9_stake_distribution(benchmark):
    result = benchmark(fig9_stake_distribution.run, 4024, 0.5, 400)
    row = result.rows()[0]
    # The capped law integrates to 1 and, at t = 4024, is dominated by its
    # continuous body centred on the semi-active trajectory.
    assert row["total_mass"] == pytest.approx(1.0, abs=5e-3)
    assert row["continuous_mass"] == pytest.approx(1.0, abs=5e-3)
    assert result.median_stake == pytest.approx(semi_active_stake(4024.0), rel=1e-9)
    # The density peaks near the median.
    densities = dict(zip(result.stake_grid, result.density))
    peak_stake = max(densities, key=densities.get)
    assert peak_stake == pytest.approx(result.median_stake, abs=1.0)
    print()
    print(result.format_text())
