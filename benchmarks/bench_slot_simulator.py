"""Benchmarks of the slot-level protocol simulator itself.

These are engineering benchmarks (not paper figures): they time the
simulator on the healthy-network baseline and on the partitioned-network
scenario, and assert the protocol-level invariants that every run must
satisfy (Liveness when the network is healthy, leak + stalled finality
under partition, Availability throughout).
"""

import pytest

from repro.sim.scenarios import build_honest_simulation, build_partitioned_simulation
from repro.spec.config import SpecConfig


@pytest.mark.benchmark(group="simulator")
def test_healthy_network_throughput(benchmark):
    def run():
        engine = build_honest_simulation(n_validators=16)
        return engine.run(6)

    result = benchmark(run)
    assert result.liveness_held(min_progress=3)
    assert not result.safety_violated()


@pytest.mark.benchmark(group="simulator")
def test_partitioned_network_throughput(benchmark):
    def run():
        engine = build_partitioned_simulation(n_validators=16, p0=0.5)
        return engine.run(6)

    result = benchmark(run)
    assert result.max_finalized_epoch() == 0
    assert result.leak_epochs()


@pytest.mark.benchmark(group="simulator")
def test_double_voting_attack_run(benchmark):
    config = SpecConfig.minimal().with_overrides(inactivity_penalty_quotient=2 ** 7)

    def run():
        engine = build_partitioned_simulation(
            n_validators=12,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="double-voting",
            config=config,
        )
        return engine.run(14)

    result = benchmark(run)
    assert result.safety_violated()
