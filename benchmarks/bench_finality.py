"""Benchmark: array-native vs loop throughput of FFG justification.

The finality stage of epoch processing now runs on the
``finality_epoch_update`` kernel pair: per-link stake supports over flat
checkpoint-vote arrays (lexsort + bincount on the ``"numpy"`` backend, a
per-vote dict walk on the ``"python"`` loop reference) feeding a shared
decision cascade.  The ``"numpy"`` backend must beat the loop reference by
at least an order of magnitude on sim-scale populations; both backends are
first checked to produce identical justification/finalization
trajectories, so the comparison times the same semantics.  This is the
accountability check for the PR that ported ``spec/finality.py`` onto
``repro.core``.
"""

import time

import numpy as np
import pytest

from repro.core.backend import FinalityRules, get_backend
from repro.core.ffg import FlatVotePool
from repro.spec.config import SpecConfig

POPULATION = 20_000
EPOCHS = 10
#: Root ids: 0 is genesis, epoch e's canonical root is 2e-1, its fork 2e.
GENESIS_ROOT = 0

RULES = FinalityRules.from_config(SpecConfig.mainnet())


def _fixture(seed=0):
    """Seeded votes for EPOCHS epochs: conflicting targets, stale sources."""
    rng = np.random.default_rng(seed)
    stakes = rng.uniform(16.0, 32.0, POPULATION)
    eligible = rng.random(POPULATION) < 0.98
    # The exact total is shared by both backends (it is an input, computed
    # once by the adapter in production).
    total_stake = float(np.sum(np.where(eligible, stakes, 0.0)))
    epochs = []
    last_canonical = (0, GENESIS_ROOT)  # (epoch, root) expected justified tip
    for epoch in range(1, EPOCHS + 1):
        if epoch % 7 == 0:  # vote drought: a finality gap
            epochs.append((epoch, None))
            continue
        canonical_root = 2 * epoch - 1
        fork_root = 2 * epoch
        validators = np.arange(POPULATION, dtype=np.int64)
        pick = rng.random(POPULATION)
        # 75% canonical votes from the justified tip; the rest split over a
        # stale genesis source, a wrong-root source at the tip epoch, and
        # a conflicting fork target — four distinct links per epoch.
        target_roots = np.where(pick < 0.92, canonical_root, fork_root).astype(np.int64)
        source_epochs = np.select(
            [pick < 0.75, pick < 0.84], [last_canonical[0], 0], default=last_canonical[0]
        ).astype(np.int64)
        source_epochs[pick >= 0.92] = 0
        source_roots = np.where(pick < 0.75, last_canonical[1], GENESIS_ROOT).astype(
            np.int64
        )
        epochs.append((epoch, (validators, source_epochs, source_roots, target_roots)))
        last_canonical = (epoch, canonical_root)
    return stakes, eligible, total_stake, epochs


def _run_epochs(kernel, stakes, eligible, total_stake, epochs):
    """Drive EPOCHS of justification, replaying transitions like the adapter."""
    justified_roots = {0: GENESIS_ROOT}
    finalized_epoch = 0
    trajectory = []
    for epoch, votes in epochs:
        if votes is None:
            continue
        update = kernel.finality_epoch_update(
            *votes,
            stakes,
            eligible,
            RULES,
            epoch=epoch,
            total_stake=total_stake,
            justified_roots=justified_roots,
            finalized_epoch=finalized_epoch,
        )
        for event in update.events:
            justified_roots[event.target_epoch] = event.target_root
            if event.finalizes_source:
                finalized_epoch = event.source_epoch
        trajectory.append((epoch, update.events, sorted(update.link_supports.items())))
    return trajectory, justified_roots, finalized_epoch


@pytest.mark.benchmark(group="finality")
def test_numpy_finality_throughput(benchmark):
    kernel = get_backend("numpy")
    fixture = _fixture()
    trajectory, _, _ = benchmark.pedantic(
        _run_epochs, args=(kernel, *fixture), rounds=5, iterations=1
    )
    assert trajectory


@pytest.mark.benchmark(group="finality")
def test_python_finality_throughput(benchmark):
    kernel = get_backend("python")
    fixture = _fixture()
    trajectory, _, _ = benchmark.pedantic(
        _run_epochs, args=(kernel, *fixture), rounds=1, iterations=1
    )
    assert trajectory


@pytest.mark.benchmark(group="finality")
def test_vote_pool_insert_throughput(benchmark):
    """O(1) inserts: one full population of votes into a FlatVotePool."""
    stakes, _, _, epochs = _fixture()
    _, votes = next(item for item in epochs if item[1] is not None)
    validators, source_epochs, source_roots, target_roots = (
        arr.tolist() for arr in votes
    )

    def insert_all():
        pool = FlatVotePool(initial_capacity=1024, stakes=stakes)
        for validator, source_epoch, source_root, target_root in zip(
            validators, source_epochs, source_roots, target_roots
        ):
            pool.add_vote(validator, source_epoch, source_root, 1, target_root)
        return pool

    pool = benchmark.pedantic(insert_all, rounds=3, iterations=1)
    assert pool.vote_count(1) == POPULATION


def test_numpy_at_least_10x_faster_and_identical():
    """The acceptance check: >=10x on identical seeded trajectories.

    The numpy region is a couple of milliseconds per epoch, so single
    unwarmed readings are noisy on shared CI runners; take the best of
    several rounds (after a warmup) before asserting the ratio.
    """
    timings = {}
    finals = {}
    for name, rounds in (("numpy", 5), ("python", 2)):
        kernel = get_backend(name)
        fixture = _fixture(seed=1)
        _run_epochs(kernel, *fixture)  # warmup
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            finals[name] = _run_epochs(kernel, *fixture)
            best = min(best, time.perf_counter() - start)
        timings[name] = best
    assert finals["numpy"] == finals["python"]
    trajectory, justified_roots, finalized_epoch = finals["numpy"]
    assert any(events for _, events, _ in trajectory)  # justifications happened
    assert finalized_epoch > 0  # and so did finalizations
    assert len(justified_roots) > 1
    speedup = timings["python"] / timings["numpy"]
    print(
        f"\nFFG justification: numpy {timings['numpy']*1e3:.1f}ms, "
        f"python {timings['python']*1e3:.1f}ms -> {speedup:.0f}x"
    )
    assert speedup >= 10.0
