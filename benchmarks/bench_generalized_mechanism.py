"""Benchmark + ablation: the paper's quantities under alternative penalty mechanisms."""

import pytest

from repro.experiments import generalized_mechanism


@pytest.mark.benchmark(group="generalized-mechanism")
def test_generalized_mechanism_sweep(benchmark):
    result = benchmark(generalized_mechanism.run)
    rows = {row["mechanism"]: row for row in result.rows()}
    # The Ethereum mechanism reproduces the paper's scales.
    ethereum = rows["ethereum (2**26)"]
    assert ethereum["safety_bound_epochs"] == pytest.approx(4661, abs=5)
    assert ethereum["critical_beta0"] == pytest.approx(0.2421, abs=2e-3)
    # Leak speed moves every timescale in the expected direction, while the
    # critical Byzantine proportion is quotient-invariant.
    assert (
        rows["aggressive (2**20)"]["safety_bound_epochs"]
        < ethereum["safety_bound_epochs"]
        < rows["lenient (2**28)"]["safety_bound_epochs"]
    )
    assert rows["moderate (2**24)"]["critical_beta0"] == pytest.approx(
        ethereum["critical_beta0"], rel=1e-9
    )
    print()
    print(result.format_text())


@pytest.mark.benchmark(group="generalized-mechanism")
def test_recovery_tail(benchmark):
    from repro.experiments import recovery_tail

    result = benchmark(recovery_tail.run, (0.6, 0.62, 0.65))
    for row in result.rows():
        assert 0 < row["recovery_tail_epochs"] < row["leak_duration_epochs"]
    print()
    print(result.format_text())
