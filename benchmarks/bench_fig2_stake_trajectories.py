"""Benchmark + reproduction check for Figure 2 (stake trajectories).

Regenerates the three stake trajectories (active, semi-active, inactive)
over 8000 epochs and checks the ejection epochs against the paper's 4685
and 7652 references.
"""

import pytest

from repro.experiments import fig2_stake_trajectories


@pytest.mark.benchmark(group="fig2")
def test_fig2_stake_trajectories(benchmark):
    result = benchmark(fig2_stake_trajectories.run, 8000, 10)
    rows = {row["behavior"]: row for row in result.rows()}
    # Shape: active constant, semi-active above inactive, ejection ordering.
    assert rows["active"]["final_stake_eth"] == pytest.approx(32.0)
    assert (
        result.trajectories["semi-active"].final_stake()
        >= result.trajectories["inactive"].final_stake()
    )
    # Paper: inactive ejected at 4685, semi-active at 7652 (within 1%).
    assert rows["inactive"]["discrete_ejection_epoch"] == pytest.approx(4685, rel=0.01)
    assert rows["semi-active"]["discrete_ejection_epoch"] == pytest.approx(7652, rel=0.01)
    print()
    print(result.format_text())
