"""Benchmark + reproduction check for Figure 7 (feasible (p0, beta0) region)."""

import pytest

from repro.experiments import fig7_threshold_region


@pytest.mark.benchmark(group="fig7")
def test_fig7_threshold_region(benchmark):
    result = benchmark(fig7_threshold_region.run, 51, 67, 0.33)
    # Paper: the smallest beta0 exceeding 1/3 on both branches at p0 = 0.5 is 0.2421.
    assert result.critical_beta0_at_half == pytest.approx(0.2421, abs=5e-4)
    # The boundary beta0_min(p0) grows with p0 (more honest-active stake on
    # the branch makes the attack harder).
    betas = list(result.boundary_beta0)
    assert all(b >= a - 1e-12 for a, b in zip(betas, betas[1:]))
    # Feasibility on both branches is symmetric around p0 = 0.5 and hardest there.
    region = result.region
    both = region.feasible_on_both()
    assert both.any()
    print()
    print(result.format_text())
