"""Benchmark + reproduction check for Figure 3 (active-validator ratio vs p0)."""

import pytest

from repro.experiments import fig3_active_ratio


@pytest.mark.benchmark(group="fig3")
def test_fig3_active_ratio(benchmark):
    result = benchmark(
        fig3_active_ratio.run,
        (0.6, 0.5, 0.4, 0.3, 0.2),
        8000,
        40,
        True,
    )
    # Shape: every curve starts at p0, is non-decreasing, and ends at 1 after
    # the ejection of inactive validators; larger p0 crosses 2/3 earlier.
    for p0 in result.p0_values:
        series = result.analytical_series[p0]
        assert series[0] == pytest.approx(p0)
        assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))
        assert series[-1] == pytest.approx(1.0)
    assert result.threshold_epochs[0.6] < result.threshold_epochs[0.5]
    # The discrete simulation tracks the analytical curve early on.
    assert result.simulated_series[0.5][10] == pytest.approx(
        result.analytical_series[0.5][10], abs=0.02
    )
    print()
    print(result.format_text())
