"""Benchmarks of the resumable experiment service.

Two accountability gates for the PR-10 service layer:

* **Resume-only-missing** — growing a sweep job from 8 to 16 trials
  over the same per-trial cache must *compute* only the 8 new trials
  (``stats.stores == 8``) and must finish in well under the
  proportional cost of a cold 16-trial run.  This is the property that
  makes SIGKILL recovery cheap: finished trials are never redone.
* **Full replay** — resubmitting an identical job against a warm cache
  must be served from disk >=10x faster than the cold run, on
  byte-identical trial rows.

Timing results are accumulated into the machine-readable
``BENCH_service.json`` artifact that CI uploads next to
``BENCH_sweeps.json``.
"""

import json
import pathlib
import time

from repro.cache import ResultCache
from repro.service.executor import run_worker_loop
from repro.service.jobs import JobStore
from repro.sim.sweeps import ScenarioSpec

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_service.json"

#: The benchmark workload: the same seeded balancing-attack scenario
#: family as ``bench_sweeps``, scaled so one trial costs ~100ms.
SPEC = ScenarioSpec(
    builder="balancing",
    kwargs={"n_validators": 128, "byzantine_fraction": 0.2, "sway_delay": 2.0},
    epochs=2,
    seed="bench-service",
)
BASE_TRIALS = 8
GROWN_TRIALS = 16


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark section into the JSON artifact (any test order)."""
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _run_job(store, cache, n_trials):
    record = store.submit(
        "sweep",
        {"specs": [SPEC.canonical()], "n_trials": n_trials, "chunk_size": 1},
    )
    start = time.perf_counter()
    run_worker_loop(store, cache, jobs=1, idle_exit=True)
    elapsed = time.perf_counter() - start
    final = store.get(record.job_id)
    assert final.state == "done"
    return elapsed, final


def test_resume_computes_only_missing_trials(tmp_path):
    """The tentpole gate: growing 8 -> 16 trials stores exactly 8 more."""
    cache_dir = tmp_path / "cache"
    cold_cache = ResultCache(cache_dir)
    cold_time, cold = _run_job(JobStore(tmp_path / "svc-cold"), cold_cache, BASE_TRIALS)
    assert cold_cache.stats.stores == BASE_TRIALS

    grown_cache = ResultCache(cache_dir)
    grown_time, grown = _run_job(
        JobStore(tmp_path / "svc-grown"), grown_cache, GROWN_TRIALS
    )
    # Only the 8 new trials computed; the first 8 rows replayed from disk.
    assert grown_cache.stats.stores == GROWN_TRIALS - BASE_TRIALS
    assert grown.progress["cached"] == BASE_TRIALS
    assert (
        json.dumps(grown.result["trial_rows"][:BASE_TRIALS])
        == json.dumps(cold.result["trial_rows"])
    )
    per_trial_cold = cold_time / BASE_TRIALS
    per_trial_grown = grown_time / (GROWN_TRIALS - BASE_TRIALS)
    print(
        f"\nresume ({BASE_TRIALS} -> {GROWN_TRIALS} trials): cold "
        f"{cold_time:.2f}s ({per_trial_cold * 1e3:.0f}ms/trial), grown "
        f"{grown_time:.2f}s ({per_trial_grown * 1e3:.0f}ms/computed trial)"
    )
    _record(
        "resume",
        {
            "base_trials": BASE_TRIALS,
            "grown_trials": GROWN_TRIALS,
            "cold_seconds": cold_time,
            "grown_seconds": grown_time,
            "stores_cold": BASE_TRIALS,
            "stores_grown": grown_cache.stats.stores,
            "seconds_per_cold_trial": per_trial_cold,
            "seconds_per_resumed_trial": per_trial_grown,
        },
    )
    # The grown run must not pay for the cached prefix: its wall clock
    # stays below a cold 16-trial run (generous 1.5x slack on the
    # computed half to absorb scheduler noise).
    assert grown_time < per_trial_cold * (GROWN_TRIALS - BASE_TRIALS) * 1.5


def test_replay_of_finished_job_at_least_10x_faster(tmp_path):
    """The replay gate: an identical resubmission is a disk read."""
    cache_dir = tmp_path / "cache"
    cold_time, cold = _run_job(
        JobStore(tmp_path / "svc-cold"), ResultCache(cache_dir), BASE_TRIALS
    )
    warm_cache = ResultCache(cache_dir)
    warm_time, warm = _run_job(JobStore(tmp_path / "svc-warm"), warm_cache, BASE_TRIALS)
    assert warm_cache.stats.stores == 0
    assert warm.progress["cached"] == BASE_TRIALS
    assert json.dumps(warm.result["trial_rows"]) == json.dumps(
        cold.result["trial_rows"]
    )
    speedup = cold_time / warm_time
    print(
        f"\nservice replay ({BASE_TRIALS} trials): cold {cold_time:.2f}s, "
        f"warm {warm_time * 1e3:.1f}ms ({speedup:.0f}x)"
    )
    _record(
        "replay",
        {
            "n_trials": BASE_TRIALS,
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "replay_speedup": speedup,
        },
    )
    assert speedup >= 10.0
