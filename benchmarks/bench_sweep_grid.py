"""Benchmark + ablation: (p0, beta0) sweep of the conflicting-finalization time."""

import pytest

from repro.experiments import sweep_grid


@pytest.mark.benchmark(group="sweep-grid")
def test_sweep_grid(benchmark):
    result = benchmark(
        sweep_grid.run, (0.3, 0.4, 0.5, 0.6, 0.7), (0.0, 0.1, 0.2, 0.3, 0.33)
    )
    # The even split is the worst case for every Byzantine proportion, and
    # the grid is symmetric around it (the fork has two sides).
    for beta0 in result.beta0_values:
        assert result.worst_case_split(beta0) == pytest.approx(0.5)
    assert result.slashing_grid[0, 0] == pytest.approx(result.slashing_grid[-1, 0])
    # The paper's Table-2 corner values sit on the p0 = 0.5 row.
    i = result.p0_values.index(0.5)
    assert result.slashing_grid[i, 0] == pytest.approx(4685.0)
    assert result.slashing_grid[i, -1] == pytest.approx(502, abs=1)
    print()
    print(result.format_text())
