"""Benchmark: view-sharded vs per-node slot simulation throughput.

The view-sharding refactor simulates one node per view group (2–3 for a
partitioned network) instead of one per validator, and moves committee
votes as flat-array batches.  This file is the accountability gate:

* at equal size (512 validators, 2-partition, 2 epochs) the grouped
  engine must beat the per-node fallback by >=10x on identical results;
* at mainnet scale (10,000 validators, same scenario and horizon) the
  grouped engine must *still* be >=10x faster than the per-node engine at
  512 validators — and per-node cost is strictly monotone in the
  validator count (every slot ingests more messages on more nodes), so
  this asserts the >=10x claim at 10k a fortiori.  The per-node engine
  cannot even be constructed at 10k: it needs N registry copies of N
  validators (10⁸ objects) before simulating a single slot, which is the
  point of the refactor.

Set ``BENCH_SLOT_SIM_FULL=1`` to attempt the direct 10k-vs-10k
comparison on machines with tens of GB of RAM and minutes to spare.
"""

import os
import time

import pytest

from repro.sim.scenarios import build_partitioned_simulation, build_preset

SMALL = 512
LARGE = 10_000
EPOCHS = 2


def _timed_run(n_validators: int, view_sharding: bool):
    engine = build_partitioned_simulation(
        n_validators=n_validators, p0=0.5, view_sharding=view_sharding
    )
    start = time.perf_counter()
    result = engine.run(EPOCHS)
    return time.perf_counter() - start, engine, result


def test_view_sharding_at_least_10x_faster():
    """The acceptance gate: >=10x at equal size, >=10x at 10k a fortiori."""
    grouped_small_time, _, grouped_small = _timed_run(SMALL, view_sharding=True)
    per_node_time, _, per_node = _timed_run(SMALL, view_sharding=False)
    # Identical physics first: the speedup must not change the simulation.
    assert grouped_small.snapshots == per_node.snapshots
    assert grouped_small.slashed_indices == per_node.slashed_indices
    for index in grouped_small.final_states:
        assert grouped_small.final_states[index] == per_node.final_states[index]

    grouped_large_time, engine, result = _timed_run(LARGE, view_sharding=True)
    # Partition physics hold at mainnet scale.
    assert result.max_finalized_epoch() == 0
    assert engine.views["branch-1"].head() != engine.views["branch-2"].head()
    assert len(engine.views) == 2

    equal_size_speedup = per_node_time / grouped_small_time
    large_speedup_bound = per_node_time / grouped_large_time
    print(
        f"\nslot sim ({EPOCHS} epochs, 2-partition): "
        f"per-node@{SMALL} {per_node_time:.2f}s, "
        f"grouped@{SMALL} {grouped_small_time*1e3:.0f}ms ({equal_size_speedup:.0f}x), "
        f"grouped@{LARGE} {grouped_large_time:.2f}s "
        f"(>= {large_speedup_bound:.0f}x vs per-node@{LARGE})"
    )
    assert equal_size_speedup >= 10.0
    # Per-node cost grows strictly with N; beating the 512-validator
    # per-node baseline by 10x while simulating 20x more validators
    # proves >=10x at 10k.
    assert large_speedup_bound >= 10.0


@pytest.mark.skipif(
    not os.environ.get("BENCH_SLOT_SIM_FULL"),
    reason="direct per-node 10k run needs tens of GB of RAM (BENCH_SLOT_SIM_FULL=1)",
)
def test_view_sharding_direct_10k_comparison():
    grouped_time, _, grouped = _timed_run(LARGE, view_sharding=True)
    per_node_time, _, per_node = _timed_run(LARGE, view_sharding=False)
    assert grouped.snapshots == per_node.snapshots
    assert per_node_time / grouped_time >= 10.0


@pytest.mark.benchmark(group="slot-sim")
def test_grouped_partition_throughput_10k(benchmark):
    """Wall-clock of the previously-unreachable 10k two-branch scenario."""

    def run():
        return build_partitioned_simulation(n_validators=LARGE, p0=0.5).run(EPOCHS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.max_finalized_epoch() == 0
    assert len(result.distinct_final_states()) == 2


@pytest.mark.benchmark(group="slot-sim")
def test_mainnet_preset_throughput(benchmark):
    """The mainnet-config preset (32-slot epochs, 10k validators)."""

    def run():
        return build_preset("mainnet-partition-10k").run(EPOCHS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.epochs_run == EPOCHS
    assert not result.safety_violated()
