"""Benchmark: view-sharded vs per-node slot simulation throughput.

The view-sharding refactor simulates one node per view group (2–3 for a
partitioned network) instead of one per validator, and moves committee
votes as flat-array batches.  This file is the accountability gate:

* at equal size (512 validators, 2-partition, 2 epochs) the grouped
  engine must beat the per-node fallback by >=10x on identical results;
* at mainnet scale (10,000 validators, same scenario and horizon) the
  grouped engine must *still* be >=10x faster than the per-node engine at
  512 validators — and per-node cost is strictly monotone in the
  validator count (every slot ingests more messages on more nodes), so
  this asserts the >=10x claim at 10k a fortiori.  The per-node engine
  cannot even be constructed at 10k: it needs N registry copies of N
  validators (10⁸ objects) before simulating a single slot, which is the
  point of the refactor.

The dynamic-splitting PR adds the balancing-attack workload: a *healthy*
512-validator network whose single honest view fragments at slot 1 via
targeted sends.  The split path must keep the >=10x margin over per-node,
and the 10k preset must complete in seconds with a bounded (O(branches),
not O(N)) peak group count and a horizon-bounded attestation backlog.

Timing/shape results are accumulated into the machine-readable
``BENCH_slot_sim.json`` artifact (slots/sec, peak group count,
validators) that CI uploads.

Set ``BENCH_SLOT_SIM_FULL=1`` to attempt the direct 10k-vs-10k
comparison on machines with tens of GB of RAM and minutes to spare.
"""

import json
import os
import pathlib
import time

import pytest

from repro.sim.scenarios import (
    build_balancing_attack_simulation,
    build_honest_simulation,
    build_partitioned_simulation,
    build_preset,
)
from repro.spec.config import SpecConfig

SMALL = 512
LARGE = 10_000
EPOCHS = 2

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_slot_sim.json"


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark section into the JSON artifact (any test order)."""
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _slots_per_second(engine, result, seconds: float) -> float:
    return result.epochs_run * engine.config.slots_per_epoch / seconds


def _timed_run(n_validators: int, view_sharding: bool):
    engine = build_partitioned_simulation(
        n_validators=n_validators, p0=0.5, view_sharding=view_sharding
    )
    start = time.perf_counter()
    result = engine.run(EPOCHS)
    return time.perf_counter() - start, engine, result


def _timed_balancing_run(n_validators: int, view_sharding: bool):
    engine = build_balancing_attack_simulation(
        n_validators=n_validators, view_sharding=view_sharding
    )
    start = time.perf_counter()
    result = engine.run(EPOCHS)
    return time.perf_counter() - start, engine, result


def test_view_sharding_at_least_10x_faster():
    """The acceptance gate: >=10x at equal size, >=10x at 10k a fortiori."""
    grouped_small_time, _, grouped_small = _timed_run(SMALL, view_sharding=True)
    per_node_time, _, per_node = _timed_run(SMALL, view_sharding=False)
    # Identical physics first: the speedup must not change the simulation.
    assert grouped_small.snapshots == per_node.snapshots
    assert grouped_small.slashed_indices == per_node.slashed_indices
    for index in grouped_small.final_states:
        assert grouped_small.final_states[index] == per_node.final_states[index]

    grouped_large_time, engine, result = _timed_run(LARGE, view_sharding=True)
    # Partition physics hold at mainnet scale.
    assert result.max_finalized_epoch() == 0
    assert engine.views["branch-1"].head() != engine.views["branch-2"].head()
    assert len(engine.views) == 2

    equal_size_speedup = per_node_time / grouped_small_time
    large_speedup_bound = per_node_time / grouped_large_time
    print(
        f"\nslot sim ({EPOCHS} epochs, 2-partition): "
        f"per-node@{SMALL} {per_node_time:.2f}s, "
        f"grouped@{SMALL} {grouped_small_time*1e3:.0f}ms ({equal_size_speedup:.0f}x), "
        f"grouped@{LARGE} {grouped_large_time:.2f}s "
        f"(>= {large_speedup_bound:.0f}x vs per-node@{LARGE})"
    )
    _record(
        "partition",
        {
            "epochs": EPOCHS,
            "per_node": {
                "n_validators": SMALL,
                "seconds": per_node_time,
                "slots_per_second": _slots_per_second(engine, per_node, per_node_time),
            },
            "grouped_small": {
                "n_validators": SMALL,
                "seconds": grouped_small_time,
                "slots_per_second": _slots_per_second(
                    engine, grouped_small, grouped_small_time
                ),
                "peak_view_count": grouped_small.peak_view_count,
            },
            "grouped_large": {
                "n_validators": LARGE,
                "seconds": grouped_large_time,
                "slots_per_second": _slots_per_second(engine, result, grouped_large_time),
                "peak_view_count": result.peak_view_count,
            },
            "equal_size_speedup": equal_size_speedup,
            "large_speedup_bound": large_speedup_bound,
        },
    )
    assert equal_size_speedup >= 10.0
    # Per-node cost grows strictly with N; beating the 512-validator
    # per-node baseline by 10x while simulating 20x more validators
    # proves >=10x at 10k.
    assert large_speedup_bound >= 10.0


def test_balancing_split_path_at_least_10x_faster():
    """The dynamic-split acceptance gate at 512 validators.

    The balancing scenario has *no* partition: the honest view fragments
    at slot 1 purely through the adversary's targeted sends, so this
    times the copy-on-write split machinery itself.  The grouped engine
    must stay >=10x over per-node on bit-identical physics.
    """
    grouped_time, grouped_engine, grouped = _timed_balancing_run(
        SMALL, view_sharding=True
    )
    per_node_time, _, per_node = _timed_balancing_run(SMALL, view_sharding=False)
    # Identical physics first, fragmentation and all.
    assert grouped.snapshots == per_node.snapshots
    assert grouped.slashed_indices == per_node.slashed_indices
    for index in grouped.final_states:
        assert grouped.final_states[index] == per_node.final_states[index]
    # The fragmentation stays O(branches): left + right + Byzantine.
    assert len(grouped.split_events()) == 1
    assert grouped.peak_view_count == 3
    speedup = per_node_time / grouped_time
    _record(
        "balancing",
        {
            "epochs": EPOCHS,
            "n_validators": SMALL,
            "per_node_seconds": per_node_time,
            "grouped_seconds": grouped_time,
            "grouped_slots_per_second": _slots_per_second(
                grouped_engine, grouped, grouped_time
            ),
            "peak_view_count": grouped.peak_view_count,
            "speedup": speedup,
        },
    )
    print(
        f"\nbalancing ({EPOCHS} epochs, {SMALL} validators): "
        f"per-node {per_node_time:.2f}s, grouped {grouped_time*1e3:.0f}ms "
        f"({speedup:.0f}x, peak views {grouped.peak_view_count})"
    )
    assert speedup >= 10.0


def test_balancing_at_mainnet_scale_completes_in_seconds():
    """10k validators fragment into 3 views and stay horizon-bounded."""
    engine = build_preset("mainnet-balancing-10k")
    start = time.perf_counter()
    result = engine.run(EPOCHS)
    elapsed = time.perf_counter() - start
    assert result.epochs_run == EPOCHS
    assert result.peak_view_count <= 4  # ≪ N: left + right + Byzantine
    # Satellite: the inclusion horizon bounds the per-view attestation
    # backlog even at mainnet committee sizes.
    for view in engine.views.values():
        horizon = view.inclusion_horizon_epochs
        assert horizon is not None
        assert len(view.attestations_by_epoch) <= horizon + 1
    _record(
        "balancing_mainnet_10k",
        {
            "epochs": EPOCHS,
            "n_validators": len(engine.registry),
            "seconds": elapsed,
            "slots_per_second": _slots_per_second(engine, result, elapsed),
            "peak_view_count": result.peak_view_count,
        },
    )
    print(
        f"\nbalancing @10k (mainnet config, {EPOCHS} epochs): {elapsed:.1f}s, "
        f"peak views {result.peak_view_count}"
    )
    assert elapsed < 120.0


def test_gossip_latency_at_mainnet_scale_completes_in_seconds():
    """The realistic-network gate: 10k validators under gossip propagation.

    The per-hop gossip model samples one latency per validator per
    message, yet the default parameters keep every arrival inside one
    phase window — so the healthy network must stay a *single* view
    (zero split overhead), keep finalizing, and hold throughput within
    an order of magnitude of the uniform-delay run.  Latency statistics
    go into the JSON artifact alongside the throughput numbers.
    """
    engine = build_preset("mainnet-gossip-10k")
    start = time.perf_counter()
    result = engine.run(EPOCHS)
    elapsed = time.perf_counter() - start
    assert result.epochs_run == EPOCHS
    # Liveness survives realistic propagation...
    assert result.max_finalized_epoch() >= 0
    # ...without fragmenting the single honest view (origin-pays-one-hop
    # rule plus sub-phase default hop delays).
    assert result.peak_view_count == 1
    stats = result.transport_stats
    model = engine.latency_model
    _record(
        "gossip_mainnet_10k",
        {
            "epochs": EPOCHS,
            "n_validators": len(engine.registry),
            "latency_model": type(model).__name__,
            "degree": model.degree,
            "hop_delay": list(model.hop_delay),
            "seconds": elapsed,
            "slots_per_second": _slots_per_second(engine, result, elapsed),
            "peak_view_count": result.peak_view_count,
            "messages_sent": stats.sent,
            "messages_delivered": stats.delivered,
            "latency_delayed": stats.latency_delayed,
            "finalized_epoch": result.max_finalized_epoch(),
        },
    )
    print(
        f"\ngossip @10k (mainnet config, {EPOCHS} epochs): {elapsed:.1f}s, "
        f"{stats.latency_delayed} latency-delayed deliveries, "
        f"peak views {result.peak_view_count}"
    )
    assert elapsed < 120.0


@pytest.mark.skipif(
    not os.environ.get("BENCH_SLOT_SIM_FULL"),
    reason="direct per-node 10k run needs tens of GB of RAM (BENCH_SLOT_SIM_FULL=1)",
)
def test_view_sharding_direct_10k_comparison():
    grouped_time, _, grouped = _timed_run(LARGE, view_sharding=True)
    per_node_time, _, per_node = _timed_run(LARGE, view_sharding=False)
    assert grouped.snapshots == per_node.snapshots
    assert per_node_time / grouped_time >= 10.0


@pytest.mark.benchmark(group="slot-sim")
def test_grouped_partition_throughput_10k(benchmark):
    """Wall-clock of the previously-unreachable 10k two-branch scenario."""

    def run():
        return build_partitioned_simulation(n_validators=LARGE, p0=0.5).run(EPOCHS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.max_finalized_epoch() == 0
    assert len(result.distinct_final_states()) == 2


@pytest.mark.benchmark(group="slot-sim")
def test_mainnet_preset_throughput(benchmark):
    """The mainnet-config preset (32-slot epochs, 10k validators)."""

    def run():
        return build_preset("mainnet-partition-10k").run(EPOCHS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.epochs_run == EPOCHS
    assert not result.safety_violated()


# ----------------------------------------------------------------------
# Small-scenario micro-benchmarks (formerly bench_slot_simulator.py):
# engineering baselines at 12–16 validators that assert the invariants
# every run must satisfy (Liveness when healthy, leak + stalled finality
# under partition, detected equivocation under double voting).
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="simulator")
def test_healthy_network_throughput(benchmark):
    def run():
        engine = build_honest_simulation(n_validators=16)
        return engine.run(6)

    result = benchmark(run)
    assert result.liveness_held(min_progress=3)
    assert not result.safety_violated()


@pytest.mark.benchmark(group="simulator")
def test_partitioned_network_throughput(benchmark):
    def run():
        engine = build_partitioned_simulation(n_validators=16, p0=0.5)
        return engine.run(6)

    result = benchmark(run)
    assert result.max_finalized_epoch() == 0
    assert result.leak_epochs()


@pytest.mark.benchmark(group="simulator")
def test_double_voting_attack_run(benchmark):
    config = SpecConfig.minimal().with_overrides(inactivity_penalty_quotient=2 ** 7)

    def run():
        engine = build_partitioned_simulation(
            n_validators=12,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="double-voting",
            config=config,
        )
        return engine.run(14)

    result = benchmark(run)
    assert result.safety_violated()
