"""Benchmark + reproduction check for the Section-5.1 GST upper bound for Safety.

Paper: with only honest validators, conflicting finalization cannot happen
before 4685 epochs after the leak starts; it happens at 4686 epochs for an
even split, which is the worst case over all splits.
"""

import pytest

from repro.experiments import safety_bounds


@pytest.mark.benchmark(group="safety-bound")
def test_safety_bound_analytical(benchmark):
    result = benchmark(safety_bounds.run, (0.5, 0.4, 0.3), False, 6000)
    assert result.worst_case_bound() == pytest.approx(4686.0)
    # The even split is the fastest configuration to lose Safety.
    assert result.analytical_finalization[0.5] <= result.analytical_finalization[0.4]
    assert result.analytical_finalization[0.4] <= result.analytical_finalization[0.3]
    print()
    print(result.format_text())


@pytest.mark.benchmark(group="safety-bound")
def test_safety_bound_simulated(benchmark):
    result = benchmark(safety_bounds.run, (0.5,), True, 5200)
    simulated = result.simulated_finalization[0.5]
    assert simulated is not None
    # The discrete simulator lands within 2% of the paper's 4686-epoch bound
    # (the gap is the discretization of the stake recurrence, see DESIGN.md).
    assert simulated == pytest.approx(4686, rel=0.02)
    print()
    print(result.format_text())
