"""Benchmark + reproduction check for the Section-5.3 attack-duration estimate.

Paper: with beta0 = 1/3 and j = 8, the probability that the probabilistic
bouncing attack lasts 7000 epochs is (1 - (1 - 1/3)^8)^7000 ≈ 1.01e-121.
"""

import pytest

from repro.experiments import bouncing_duration


@pytest.mark.benchmark(group="bouncing-duration")
def test_bouncing_duration(benchmark):
    result = benchmark(
        bouncing_duration.run, (1.0 / 3.0, 0.3, 0.25, 0.2, 0.1), (10, 100, 1000, 7000), 8
    )
    rows = {row["beta0"]: row for row in result.rows()}
    assert rows[1.0 / 3.0]["log10_p_at_7000"] == pytest.approx(-121.0, abs=0.5)
    # Survival probability decreases with the horizon and with smaller beta0.
    for beta0, row in rows.items():
        assert row["log10_p_at_7000"] < row["log10_p_at_1000"] < row["log10_p_at_100"]
    assert rows[0.1]["log10_p_at_7000"] < rows[1.0 / 3.0]["log10_p_at_7000"]
    # Expected duration is finite and modest even for beta0 = 1/3.
    assert rows[1.0 / 3.0]["expected_duration_epochs"] < 50
    print()
    print(result.format_text())
