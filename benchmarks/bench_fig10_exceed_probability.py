"""Benchmark + reproduction check for Figure 10 (P[beta > 1/3] over time)."""

import pytest

from repro.experiments import fig10_exceed_probability


@pytest.mark.benchmark(group="fig10")
def test_fig10_exceed_probability(benchmark):
    beta0_values = (1.0 / 3.0, 0.3333, 0.333, 0.33, 0.329, 0.3)
    result = benchmark(fig10_exceed_probability.run, beta0_values, 0.5, 8000, 50)
    # Shape: the beta0 = 1/3 curve sits at 0.5; curves are ordered by beta0;
    # every curve rises sharply shortly before the Byzantine ejection (~7653)
    # and drops to zero after it.
    one_third = result.series[1.0 / 3.0]
    mid_index = len(result.epochs) // 2
    assert one_third[mid_index] == pytest.approx(0.5, abs=1e-3)
    at_4000 = {b: result.series[b][result.epochs.index(4000)] for b in beta0_values}
    ordered = sorted(beta0_values)
    assert all(at_4000[a] <= at_4000[b] + 1e-9 for a, b in zip(ordered, ordered[1:]))
    for beta0 in (0.33, 0.329, 0.3):
        series = result.series[beta0]
        before_ejection = series[result.epochs.index(7500)]
        early = series[result.epochs.index(2000)]
        assert before_ejection > early
        assert series[-1] == 0.0  # after the Byzantine ejection
    assert result.byzantine_ejection_epoch == pytest.approx(7652, rel=0.01)
    print()
    print(result.format_text())
